/**
 * @file
 * On-chip TLBs and the DRAM-TLB (Section III-H).
 *
 * Each NDP unit has a 256-entry, 8-way D-TLB (and an I-TLB we do not model
 * in timing because kernel code is tiny and I-cache resident). On-chip
 * misses fall back to the DRAM-TLB: a hashed array of 16 B entries in
 * device DRAM, giving one DRAM access of miss penalty. A DRAM-TLB miss
 * falls back to ATS over CXL.io at microsecond cost — rare in steady state
 * because the paper (and we) assume the DRAM-TLB is warmed for resident
 * data.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitutil.hh"
#include "common/units.hh"
#include "mem/page_table.hh"

namespace m2ndp {

/** Statistics for one TLB. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t shootdowns = 0;
    /** Hits served by the one-entry last-translation cache (subset of
     *  hits): these skip the set-associative probe entirely. */
    std::uint64_t fast_hits = 0;
    /** Valid entries displaced by insert() (capacity/conflict evictions). */
    std::uint64_t evictions = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Set-associative LRU TLB keyed by (ASID, virtual page number).
 * Timing-neutral: callers charge latency based on hit/miss.
 *
 * A one-entry last-translation cache sits in front of the probe:
 * translation is queried on every global memory reference and references
 * are strongly page-local, so most lookups resolve with two compares and
 * no hashing. The fast-path entry points into the backing array (so LRU
 * stamps stay exact) and is invalidated coherently on eviction,
 * shootdown, and flush. The number of sets must be a power of two; set
 * selection is mask-indexed (no division on the hot path).
 */
class Tlb
{
  public:
    Tlb(unsigned entries, unsigned assoc, std::uint64_t page_size);

    /** Look up a VA; fills stats. @return PA of page start if present. */
    std::optional<Addr> lookup(Asid asid, Addr va);

    /** Install a translation (page-aligned PA). */
    void insert(Asid asid, Addr va, Addr pa_page);

    /** Invalidate one page (TLB shootdown, Table II). */
    void shootdown(Asid asid, Addr va);

    /** Drop everything (process teardown). */
    void flush();

    const TlbStats &stats() const { return stats_; }
    std::uint64_t pageSize() const { return page_size_; }

  private:
    struct Entry
    {
        bool valid = false;
        Asid asid = 0;
        std::uint64_t vpn = 0;
        Addr pa_page = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t setOf(Asid asid, std::uint64_t vpn) const;

    /** Advance the LRU clock, renormalizing on (theoretical) wrap so
     *  replacement never sees stamps from both sides of the wrap. */
    std::uint64_t nextLruStamp();

    unsigned sets_;
    unsigned assoc_;
    std::uint64_t set_mask_;
    std::uint64_t page_size_;
    unsigned page_shift_;
    std::vector<Entry> entries_;
    std::uint64_t lru_clock_ = 0;

    /** Last-translation fast path: points at the entry that served the
     *  previous hit (entries_ storage is stable). */
    Entry *last_entry_ = nullptr;
    Asid last_asid_ = 0;
    std::uint64_t last_vpn_ = 0;

    TlbStats stats_;
};

/**
 * The DRAM-TLB: 16 B entries at hashed locations in a reserved device DRAM
 * region. We model its *contents* as "warm for all mapped pages" (the
 * paper's steady-state assumption) and its *timing* as one DRAM access to
 * the hashed entry address; shootdowns invalidate per-page so subsequent
 * accesses take the ATS path until re-walked.
 */
class DramTlb
{
  public:
    DramTlb(Addr region_base, std::uint64_t region_bytes,
            std::uint64_t page_size);

    /** PA of the entry that would hold (asid, va): for timing accesses. */
    Addr entryAddress(Asid asid, Addr va) const;

    /** True if (asid, va) currently resolves in the DRAM-TLB. */
    bool contains(Asid asid, Addr va) const;

    /** Invalidate a page (host-initiated shootdown). */
    void shootdown(Asid asid, Addr va);

    /** Re-validate after an ATS walk. */
    void refill(Asid asid, Addr va);

    const TlbStats &stats() const { return stats_; }
    TlbStats &stats() { return stats_; }

    /** Modeled storage overhead: 16 B per page (Section III-H). */
    static constexpr std::uint64_t kEntryBytes = 16;

  private:
    std::uint64_t keyOf(Asid asid, Addr va) const;

    Addr region_base_;
    std::uint64_t num_entries_;
    std::uint64_t page_size_;
    /** Pages explicitly shot down (absent = warm). */
    std::vector<std::uint64_t> invalidated_;
    TlbStats stats_;
};

} // namespace m2ndp
