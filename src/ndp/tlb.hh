/**
 * @file
 * On-chip TLBs and the DRAM-TLB (Section III-H).
 *
 * Each NDP unit has a 256-entry, 8-way D-TLB (and an I-TLB we do not model
 * in timing because kernel code is tiny and I-cache resident). On-chip
 * misses fall back to the DRAM-TLB: a hashed array of 16 B entries in
 * device DRAM, giving one DRAM access of miss penalty. A DRAM-TLB miss
 * falls back to ATS over CXL.io at microsecond cost — rare in steady state
 * because the paper (and we) assume the DRAM-TLB is warmed for resident
 * data.
 */

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitutil.hh"
#include "common/units.hh"
#include "mem/page_table.hh"

namespace m2ndp {

/** Statistics for one TLB. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t shootdowns = 0;
    /** Hits served by the two-entry last-translation cache (subset of
     *  hits): these skip the set-associative probe entirely. */
    std::uint64_t fast_hits = 0;
    /** Valid entries displaced by insert() (capacity/conflict evictions). */
    std::uint64_t evictions = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Set-associative LRU TLB keyed by (ASID, virtual page number).
 * Timing-neutral: callers charge latency based on hit/miss.
 *
 * A two-entry last-translation cache sits in front of the probe:
 * translation is queried on every global memory reference and references
 * are strongly page-local, so most lookups resolve with a couple of
 * compares and no hashing. One entry alone thrashes on the common
 * two-buffer streaming pattern (load from A, store to B alternate pages
 * every instruction); the second, victim-style slot holds the previously
 * displaced translation and is promoted move-to-front on a hit. Both
 * slots point into the backing array (so LRU stamps stay exact) and are
 * invalidated coherently on eviction, shootdown, and flush. The number
 * of sets must be a power of two; set selection is mask-indexed (no
 * division on the hot path).
 */
class Tlb
{
  public:
    Tlb(unsigned entries, unsigned assoc, std::uint64_t page_size);

    /** Look up a VA; fills stats. @return PA of page start if present. */
    std::optional<Addr> lookup(Asid asid, Addr va);

    /** Install a translation (page-aligned PA). */
    void insert(Asid asid, Addr va, Addr pa_page);

    /** Invalidate one page (TLB shootdown, Table II). */
    void shootdown(Asid asid, Addr va);

    /** Drop everything (process teardown). */
    void flush();

    const TlbStats &stats() const { return stats_; }
    std::uint64_t pageSize() const { return page_size_; }

  private:
    struct Entry
    {
        bool valid = false;
        Asid asid = 0;
        std::uint64_t vpn = 0;
        Addr pa_page = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t setOf(Asid asid, std::uint64_t vpn) const;

    /** Advance the LRU clock, renormalizing on (theoretical) wrap so
     *  replacement never sees stamps from both sides of the wrap. */
    std::uint64_t nextLruStamp();

    unsigned sets_;
    unsigned assoc_;
    std::uint64_t set_mask_;
    std::uint64_t page_size_;
    unsigned page_shift_;
    std::vector<Entry> entries_;
    std::uint64_t lru_clock_ = 0;

    /** One slot of the last-translation fast path: points at the entry
     *  that served a recent hit (entries_ storage is stable). */
    struct FastSlot
    {
        Entry *entry = nullptr;
        Asid asid = 0;
        std::uint64_t vpn = 0;
    };
    /** MRU-ordered: [0] is checked first; a hit in [1] swaps the pair
     *  (move-to-front), and a new translation demotes [0] into [1]. */
    std::array<FastSlot, 2> fast_{};

    /** Install (entry, asid, vpn) as the MRU fast slot, demoting the
     *  current MRU into the victim slot. */
    void
    primeFast(Entry *entry, Asid asid, std::uint64_t vpn)
    {
        // Re-priming the MRU entry (insert-refresh) must not duplicate it
        // into the victim slot — that would silently halve the fast path.
        if (fast_[0].entry != entry)
            fast_[1] = fast_[0];
        fast_[0] = FastSlot{entry, asid, vpn};
    }

    /** Coherence: drop any fast slot aliasing backing entry @p e. */
    void
    dropFast(const Entry *e)
    {
        for (auto &f : fast_)
            if (f.entry == e)
                f.entry = nullptr;
    }

    TlbStats stats_;
};

/**
 * The DRAM-TLB: 16 B entries at hashed locations in a reserved device DRAM
 * region. We model its *contents* as "warm for all mapped pages" (the
 * paper's steady-state assumption) and its *timing* as one DRAM access to
 * the hashed entry address; shootdowns invalidate per-page so subsequent
 * accesses take the ATS path until re-walked.
 */
class DramTlb
{
  public:
    DramTlb(Addr region_base, std::uint64_t region_bytes,
            std::uint64_t page_size);

    /** PA of the entry that would hold (asid, va): for timing accesses. */
    Addr entryAddress(Asid asid, Addr va) const;

    /** True if (asid, va) currently resolves in the DRAM-TLB. */
    bool contains(Asid asid, Addr va) const;

    /** Invalidate a page (host-initiated shootdown). */
    void shootdown(Asid asid, Addr va);

    /** Re-validate after an ATS walk. */
    void refill(Asid asid, Addr va);

    const TlbStats &stats() const { return stats_; }
    TlbStats &stats() { return stats_; }

    /** Modeled storage overhead: 16 B per page (Section III-H). */
    static constexpr std::uint64_t kEntryBytes = 16;

  private:
    std::uint64_t keyOf(Asid asid, Addr va) const;

    Addr region_base_;
    std::uint64_t num_entries_;
    std::uint64_t page_size_;
    /** Pages explicitly shot down (absent = warm). */
    std::vector<std::uint64_t> invalidated_;
    TlbStats stats_;
};

} // namespace m2ndp
