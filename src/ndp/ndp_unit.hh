/**
 * @file
 * NDP unit microarchitecture (Section III-E, Fig. 7).
 *
 * An NDP unit has 4 sub-cores; each sub-core has 16 uthread slots, issues
 * one instruction per cycle (4-way dispatch per unit) with fine-grained
 * multithreading over ready uthreads, and owns scalar ALU/SFU/LSU and
 * 256-bit vector ALU/SFU/LSU pipes. Register-file capacity (48 KiB per
 * unit) is provisioned per uthread according to the kernel's declared
 * register usage, bounding concurrency exactly as in Section III-D.
 *
 * Execution is functional-first: the isa::step() call at issue performs the
 * architectural effects; this class models when things happen — FU
 * occupancy, FGMT scheduling, scratchpad vs L1D vs global-memory latency,
 * TLB/DRAM-TLB translation delay, and posted-store draining.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hh"
#include "isa/executor.hh"
#include "mem/packet.hh"
#include "mem/sparse_memory.hh"
#include "ndp/kernel.hh"
#include "ndp/tlb.hh"
#include "sim/event_queue.hh"

namespace m2ndp {

/** One uthread of work handed to a unit by the uthread generator. */
struct SpawnItem
{
    KernelInstance *instance = nullptr;
    const isa::DecodedSection *section = nullptr;
    Addr x1 = 0;          ///< mapped address (pool region) or scratchpad base
    std::uint64_t x2 = 0; ///< offset from pool base, or unique ID
};

/** Static configuration of one NDP unit (Table IV defaults). */
struct NdpUnitConfig
{
    unsigned index = 0;
    unsigned subcores = 4;
    unsigned slots_per_subcore = 16;
    std::uint64_t regfile_bytes = 48 * kKiB;
    std::uint64_t spad_bytes = 64 * kKiB; ///< data scratchpad (excl. args)
    Tick period = 500;                    ///< 2 GHz
    Tick spad_latency_cycles = 2;
    unsigned dtlb_entries = 256;
    unsigned dtlb_assoc = 8;
    Tick ats_latency = 2 * kUs; ///< DRAM-TLB miss fallback (Section II-B)

    /** Ablation: false = coarse spawning (all 16 slots of a sub-core at
     *  once, threadblock-style; Fig. 12a "w/o Fine-grained thr"). */
    bool fine_grained_spawn = true;
    /** Ablation: false = no scalar pipes; scalar ops contend for the vector
     *  ALU like SIMT-only GPUs (Fig. 12a "w/o Addr opt"). */
    bool scalar_units = true;
};

/** Aggregate statistics for one NDP unit. */
struct NdpUnitStats
{
    std::uint64_t instructions = 0;
    std::uint64_t scalar_instructions = 0;
    std::uint64_t vector_instructions = 0;
    std::uint64_t uthreads_completed = 0;
    std::uint64_t global_loads = 0;
    std::uint64_t global_stores = 0;
    std::uint64_t global_atomics = 0;
    std::uint64_t spad_accesses = 0;
    std::uint64_t spad_bytes = 0;
    std::uint64_t global_bytes = 0;
    std::uint64_t issue_cycles = 0; ///< cycles with >=1 issue
    std::uint64_t active_cycles = 0; ///< cycles unit had live uthreads
    std::uint64_t occupancy_integral = 0; ///< sum of live slots per cycle
    std::uint64_t load_latency_ticks = 0; ///< sum of blocking-access latency
    std::uint64_t load_samples = 0;
};

/**
 * Environment the unit lives in: implemented by the M2NDP device. Provides
 * the timing path to memory, functional access, translation, and work.
 */
class NdpUnitEnv
{
  public:
    virtual ~NdpUnitEnv() = default;

    virtual EventQueue &eventQueue() = 0;

    /** Timing access from unit @p unit to device-physical address @p pa. */
    virtual void unitMemAccess(unsigned unit, MemOp op, Addr pa,
                               std::uint32_t size, TickCallback done) = 0;

    /** Functional VA translation (nullopt = unmapped: kernel fault). */
    virtual std::optional<Addr> translateFunctional(Asid asid, Addr va) = 0;

    /** Functional physical-memory access (routes P2P if needed). */
    virtual void funcRead(Addr pa, void *out, unsigned size) = 0;
    virtual void funcWrite(Addr pa, const void *in, unsigned size) = 0;

    /**
     * Hinted variants for per-unit access streams: @p hint is a caller-
     * owned frame-lookup cache consulted before the shared one (wide
     * sweeps thrash the shared cache across 32 units). Defaults forward
     * to the unhinted path.
     */
    virtual void
    funcRead(Addr pa, void *out, unsigned size, SparseMemory::FrameHint &)
    {
        funcRead(pa, out, size);
    }
    virtual void
    funcWrite(Addr pa, const void *in, unsigned size,
              SparseMemory::FrameHint &)
    {
        funcWrite(pa, in, size);
    }
    virtual std::uint64_t funcAmo(AmoOp op, Addr pa, std::uint64_t operand,
                                  unsigned width) = 0;

    /** DRAM-TLB support (Section III-H). */
    virtual Addr dramTlbEntryPa(Asid asid, Addr va) = 0;
    virtual bool dramTlbWarm(Asid asid, Addr va) = 0;
    virtual void dramTlbRefill(Asid asid, Addr va) = 0;
    virtual std::uint64_t translationPageSize() = 0;

    /** Pull the next uthread for this unit (nullopt = no work). */
    virtual std::optional<SpawnItem> pullWork(unsigned unit) = 0;

    /** Hand back work pulled but not spawnable (register file full). */
    virtual void requeueWork(unsigned unit, const SpawnItem &item) = 0;

    /** A uthread of @p inst finished (at current tick). */
    virtual void uthreadFinished(KernelInstance *inst) = 0;

    /** Posted-store drain accounting for kernel completion. */
    virtual void storeIssued(KernelInstance *inst) = 0;
    virtual void storeDrained(KernelInstance *inst, Tick when) = 0;
};

/** The NDP unit proper. */
class NdpUnit : public isa::MemoryIf
{
  public:
    NdpUnit(NdpUnitEnv &env, NdpUnitConfig cfg);

    /** Kick the unit: new work may be available (spawn + issue). */
    void wake();

    /** Number of currently live (non-idle) uthread slots. */
    unsigned activeSlots() const { return live_slots_; }
    unsigned totalSlots() const
    {
        return cfg_.subcores * cfg_.slots_per_subcore;
    }

    const NdpUnitStats &stats() const { return stats_; }
    const NdpUnitConfig &config() const { return cfg_; }
    const TlbStats &dtlbStats() const { return dtlb_.stats(); }

    /** Invalidate one page translation (Table II, privileged path). */
    void
    shootdownTlb(Asid asid, Addr va)
    {
        dtlb_.shootdown(asid, va);
        for (auto &e : func_tcache_)
            e.valid = false;
    }

    /** Scratchpad backing store (per unit; shared by all uthreads, A3). */
    std::vector<std::uint8_t> &scratchpad() { return spad_; }

    // isa::MemoryIf — functional path used by the executor at issue time.
    // Routes scratchpad-window VAs to the unit scratchpad / argument
    // window and everything else through translation to device memory.
    void read(Addr va, void *out, unsigned size) override;
    void write(Addr va, const void *in, unsigned size) override;
    std::uint64_t amo(AmoOp op, Addr va, std::uint64_t operand,
                      unsigned width) override;

  private:
    enum class SlotState : std::uint8_t { Idle, Ready, WaitMem };

    struct SubCore;

    struct Slot
    {
        SlotState state = SlotState::Idle;
        isa::UthreadContext ctx;
        KernelInstance *instance = nullptr;
        const isa::DecodedSection *section = nullptr;
        /** Owning sub-core (stable; set once at construction). */
        SubCore *owner = nullptr;
        Tick ready_at = 0;
        unsigned outstanding_loads = 0;
        bool finish_pending = false;
    };

    struct SubCore
    {
        std::vector<Slot> slots;
        std::uint64_t reg_bytes_used = 0;
        unsigned rr_next = 0;
        /** Idle slots (kept incrementally so spawn/issue need no scan). */
        unsigned idle_count = 0;
        /** Slots in Ready state: lets a tick skip the whole issue walk
         *  for sub-cores whose uthreads are all waiting on memory. */
        unsigned ready_count = 0;
        /** Next-free tick per FuType (indexed by static_cast). */
        std::array<Tick, 7> fu_free{};
    };

    /**
     * One memory completion parked on the unit, to be applied by the next
     * tick at or after `when`. This is the fused-delivery landing zone:
     * a completing memory stage calls the access callback synchronously
     * (stamped with the logical completion tick, possibly in the future),
     * and the unit arms its existing cycle Ticker instead of the old
     * response-crossbar event + unit-wake event pair.
     */
    struct PendingCompletion
    {
        Slot *slot;           ///< waiting slot (nullptr for posted stores)
        KernelInstance *inst; ///< instance for drain accounting
        Tick when;            ///< logical completion tick
        MemOp op;             ///< != Read drains a store at delivery
        bool blocking;        ///< decrements slot->outstanding_loads
    };

    /** Park a completion; arms the tick ticker at the edge >= when. */
    void queueCompletion(Slot *slot, KernelInstance *inst, MemOp op,
                         bool blocking, Tick when);
    /** Apply parked completions whose tick has been reached. */
    void drainCompletions(Tick now);

    void scheduleTick(Tick at);
    void tick();
    bool trySpawn(SubCore &sc, Tick now);
    /**
     * One fused round-robin pass over @p sc's slots: issues at most one
     * eligible µop and, in the same walk, computes the earliest tick any
     * Ready slot next wants service (kTickMax if none). @p issued reports
     * whether an issue happened. Folding the next-ready computation into
     * the issue scan removes two further full-slot scans per sub-core per
     * cycle.
     */
    Tick issueOne(unsigned sc_idx, SubCore &sc, Tick now, bool &issued);
    void finishThread(SubCore &sc, Slot &slot);
    /**
     * Issue the timing side of one instruction's memory references.
     * Global refs get real completion callbacks; blocking scratchpad
     * refs have a fixed, known latency, so when they are the only thing
     * the uthread waits on the method schedules nothing and instead
     * returns the tick the slot becomes ready (0 = no pure-scratchpad
     * wait; the caller applies it to ready_at).
     */
    Tick handleMemRefs(unsigned sc_idx, SubCore &sc, Slot &slot,
                       const isa::StepResult &res, Tick now);
    /** Translation delay + global access for one ref; wakes slot. */
    void issueGlobalAccess(SubCore &sc, Slot &slot, const isa::MemRef &ref,
                           Tick now, bool blocking);
    /**
     * Issue the timing access itself (after any DRAM-TLB fill delay).
     * Split out so the D-TLB fill continuation captures only scalars —
     * capturing a ready-made closure used to overflow the 48 B inline
     * buffer and heap-allocate once per fill.
     */
    void launchGlobalAccess(Slot *slot, KernelInstance *inst, MemOp op,
                            bool blocking, Addr pa, std::uint32_t size,
                            Tick issued_at);
    bool hasIdleSlot() const;
    Tick eqNextEdge() const;
    /** First cycle edge at or after @p t. */
    Tick
    edgeAtOrAfter(Tick t) const
    {
        Tick r = t % cfg_.period;
        return r == 0 ? t : t + (cfg_.period - r);
    }
    /** Wake a slot after one outstanding blocking access completes.
     *  Called only from drainCompletions (inside tick). */
    void completeBlockingAccess(Slot *slot, Tick when);

    /** Functional scratchpad/arg-window routing helpers. */
    std::uint8_t *spadPointer(Addr va, unsigned size);

    /**
     * Functional VA->PA translation with a one-entry last-page cache:
     * translation runs per element on the functional path *and* per sector
     * on the timing path, and both are strongly page-local. Invalidated on
     * TLB shootdown (page unmap must be accompanied by a shootdown,
     * Table II). Fatals on unmapped VAs (kernel bug).
     */
    Addr translateCached(Asid asid, Addr va);

    NdpUnitEnv &env_;
    NdpUnitConfig cfg_;
    std::vector<SubCore> subcores_;
    std::vector<std::uint8_t> spad_;
    Tlb dtlb_;

    /**
     * Small direct-mapped functional translation cache (see
     * translateCached). A few entries instead of one: kernels commonly
     * stream from 2-3 distinct buffers (distinct pages) per iteration,
     * which would thrash a single entry every access.
     */
    struct FuncTcacheEntry
    {
        bool valid = false;
        Asid asid = 0;
        std::uint64_t vpn = 0;
        Addr pa_page = 0;
    };
    static constexpr unsigned kFuncTcacheEntries = 8;
    std::array<FuncTcacheEntry, kFuncTcacheEntries> func_tcache_;
    /** Per-unit frame-lookup hint for the functional memory path. */
    SparseMemory::FrameHint frame_hint_;
    std::uint64_t page_mask_ = 0; ///< translationPageSize() - 1
    unsigned page_shift_ = 0;     ///< log2(translationPageSize())
    unsigned live_slots_ = 0;
    /** Coalesced cycle wakeup: one pooled event, earliest arm wins. */
    Ticker tick_ticker_;
    bool work_maybe_available_ = true;
    /** Parked memory completions (capacity retained; drained by tick). */
    std::vector<PendingCompletion> pending_;
    Tick pending_min_ = kTickMax;
    NdpUnitStats stats_;

    /** Functional context of the uthread currently in step(). */
    Slot *current_slot_ = nullptr;
};

} // namespace m2ndp
