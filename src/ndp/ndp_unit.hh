/**
 * @file
 * NDP unit microarchitecture (Section III-E, Fig. 7).
 *
 * An NDP unit has 4 sub-cores; each sub-core has 16 uthread slots, issues
 * one instruction per cycle (4-way dispatch per unit) with fine-grained
 * multithreading over ready uthreads, and owns scalar ALU/SFU/LSU and
 * 256-bit vector ALU/SFU/LSU pipes. Register-file capacity (48 KiB per
 * unit) is provisioned per uthread according to the kernel's declared
 * register usage, bounding concurrency exactly as in Section III-D.
 *
 * Execution is functional-first: the isa::step() call at issue performs the
 * architectural effects; this class models when things happen — FU
 * occupancy, FGMT scheduling, scratchpad vs L1D vs global-memory latency,
 * TLB/DRAM-TLB translation delay, and posted-store draining.
 */

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/error.hh"
#include "common/units.hh"
#include "isa/executor.hh"
#include "mem/packet.hh"
#include "mem/sparse_memory.hh"
#include "ndp/kernel.hh"
#include "ndp/ready_sched.hh"
#include "ndp/tlb.hh"
#include "sim/event_queue.hh"

namespace m2ndp {

/** One uthread of work handed to a unit by the uthread generator. */
struct SpawnItem
{
    KernelInstance *instance = nullptr;
    const isa::DecodedSection *section = nullptr;
    Addr x1 = 0;          ///< mapped address (pool region) or scratchpad base
    std::uint64_t x2 = 0; ///< offset from pool base, or unique ID
};

/** Static configuration of one NDP unit (Table IV defaults). */
struct NdpUnitConfig
{
    unsigned index = 0;
    unsigned subcores = 4;
    unsigned slots_per_subcore = 16;
    std::uint64_t regfile_bytes = 48 * kKiB;
    std::uint64_t spad_bytes = 64 * kKiB; ///< data scratchpad (excl. args)
    Tick period = 500;                    ///< 2 GHz
    Tick spad_latency_cycles = 2;
    unsigned dtlb_entries = 256;
    unsigned dtlb_assoc = 8;
    Tick ats_latency = 2 * kUs; ///< DRAM-TLB miss fallback (Section II-B)

    /** Ablation: false = coarse spawning (all 16 slots of a sub-core at
     *  once, threadblock-style; Fig. 12a "w/o Fine-grained thr"). */
    bool fine_grained_spawn = true;
    /** Ablation: false = no scalar pipes; scalar ops contend for the vector
     *  ALU like SIMT-only GPUs (Fig. 12a "w/o Addr opt"). */
    bool scalar_units = true;
};

/** Aggregate statistics for one NDP unit. */
struct NdpUnitStats
{
    /** Burst-length histogram buckets (log2): 1, 2-3, 4-7, ... 128+. */
    static constexpr unsigned kBurstBuckets = 8;

    std::uint64_t instructions = 0;
    std::uint64_t scalar_instructions = 0;
    std::uint64_t vector_instructions = 0;
    std::uint64_t uthreads_completed = 0;
    /** Kernel traps: unmapped-VA accesses caught at translation. */
    std::uint64_t traps_unmapped = 0;
    /** Kernel traps: scratchpad accesses beyond the declared size. */
    std::uint64_t traps_spad_oob = 0;
    /** Ready uthreads retired without executing because their instance
     *  was killed (trap elsewhere, watchdog, abort). */
    std::uint64_t uthreads_killed = 0;
    std::uint64_t global_loads = 0;
    std::uint64_t global_stores = 0;
    std::uint64_t global_atomics = 0;
    std::uint64_t spad_accesses = 0;
    std::uint64_t spad_bytes = 0;
    std::uint64_t global_bytes = 0;
    std::uint64_t issue_cycles = 0; ///< cycles with >=1 issue
    std::uint64_t active_cycles = 0; ///< cycles unit had live uthreads
    std::uint64_t occupancy_integral = 0; ///< sum of live slots per cycle
    std::uint64_t load_latency_ticks = 0; ///< sum of blocking-access latency
    std::uint64_t load_samples = 0;

    // Scheduler observability (ready-list FGMT issue stage).
    /** Sum of ready-ring occupancy (issue-eligible slots) per sub-core
     *  per ticked cycle: ready_occupancy_integral / active_cycles is the
     *  average number of issuable uthreads while the unit is live. */
    std::uint64_t ready_occupancy_integral = 0;
    /** Sub-core cycles with live uthreads but an empty ready ring and an
     *  empty wake list: everything in flight is waiting on memory. */
    std::uint64_t stall_mem_wait = 0;
    /** Sub-core cycles where every live uthread sleeps on a known future
     *  tick (FU result latency, spawn delay): nothing ready *yet*. */
    std::uint64_t stall_no_ready = 0;
    /** Sub-core cycles with issue-eligible uthreads that all lost FU
     *  structural hazards (every candidate's FU busy). */
    std::uint64_t stall_fu_busy = 0;
    /** Run-until-stall bursts: maximal runs of back-to-back ticked
     *  cycles. A burst of length L covers L consecutive cycle edges. */
    std::uint64_t bursts = 0;
    std::uint64_t burst_cycles = 0; ///< cycles covered by recorded bursts
    std::uint64_t burst_max = 0;    ///< longest recorded burst (cycles)
    std::array<std::uint64_t, kBurstBuckets> burst_hist{};

    void
    recordBurst(std::uint64_t len)
    {
        if (len == 0)
            return;
        ++bursts;
        burst_cycles += len;
        burst_max = std::max(burst_max, len);
        unsigned bucket =
            len >= 128 ? kBurstBuckets - 1
                       : static_cast<unsigned>(std::bit_width(len)) - 1;
        ++burst_hist[bucket];
    }
};

/**
 * Environment the unit lives in: implemented by the M2NDP device. Provides
 * the timing path to memory, functional access, translation, and work.
 */
class NdpUnitEnv
{
  public:
    virtual ~NdpUnitEnv() = default;

    virtual EventQueue &eventQueue() = 0;

    /** Timing access from unit @p unit to device-physical address @p pa. */
    virtual void unitMemAccess(unsigned unit, MemOp op, Addr pa,
                               std::uint32_t size, TickCallback done) = 0;

    /** Functional VA translation (nullopt = unmapped: kernel fault). */
    virtual std::optional<Addr> translateFunctional(Asid asid, Addr va) = 0;

    /** Functional physical-memory access (routes P2P if needed). */
    virtual void funcRead(Addr pa, void *out, unsigned size) = 0;
    virtual void funcWrite(Addr pa, const void *in, unsigned size) = 0;

    /**
     * Hinted variants for per-unit access streams: @p hint is a caller-
     * owned frame-lookup cache consulted before the shared one (wide
     * sweeps thrash the shared cache across 32 units). Defaults forward
     * to the unhinted path.
     */
    virtual void
    funcRead(Addr pa, void *out, unsigned size, SparseMemory::FrameHint &)
    {
        funcRead(pa, out, size);
    }
    virtual void
    funcWrite(Addr pa, const void *in, unsigned size,
              SparseMemory::FrameHint &)
    {
        funcWrite(pa, in, size);
    }
    virtual std::uint64_t funcAmo(AmoOp op, Addr pa, std::uint64_t operand,
                                  unsigned width) = 0;

    /** DRAM-TLB support (Section III-H). */
    virtual Addr dramTlbEntryPa(Asid asid, Addr va) = 0;
    virtual bool dramTlbWarm(Asid asid, Addr va) = 0;
    virtual void dramTlbRefill(Asid asid, Addr va) = 0;
    virtual std::uint64_t translationPageSize() = 0;

    /**
     * Request that this unit's `tick()` runs at cycle edge @p at (>= now).
     * Requests coalesce earliest-wins. The environment owns the cycle
     * driver: one shared Ticker serves every unit, and the driver may
     * consume consecutive edges in-place (run-until-stall bursts via
     * `EventQueue::tryAdvance`) instead of paying one scheduled event per
     * unit per cycle.
     */
    virtual void requestUnitTick(unsigned unit, Tick at) = 0;

    /** Pull the next uthread for this unit (nullopt = no work). */
    virtual std::optional<SpawnItem> pullWork(unsigned unit) = 0;

    /** Hand back work pulled but not spawnable (register file full). */
    virtual void requeueWork(unsigned unit, const SpawnItem &item) = 0;

    /** A uthread of @p inst finished (at current tick). */
    virtual void uthreadFinished(KernelInstance *inst) = 0;

    /**
     * A uthread of @p inst trapped with @p code (a negative NdpError
     * value). The unit already recorded the error on the instance; the
     * environment should kill the instance (stop spawning, reclaim).
     * Default no-op keeps bare-unit tests working.
     */
    virtual void
    instanceFaulted(KernelInstance *inst, std::int64_t code)
    {
        (void)inst;
        (void)code;
    }

    /** Posted-store drain accounting for kernel completion. */
    virtual void storeIssued(KernelInstance *inst) = 0;
    virtual void storeDrained(KernelInstance *inst, Tick when) = 0;
};

/** The NDP unit proper. */
class NdpUnit : public isa::MemoryIf
{
  public:
    NdpUnit(NdpUnitEnv &env, NdpUnitConfig cfg);

    /** Kick the unit: new work may be available (spawn + issue). */
    void wake();

    /**
     * Run one cycle at edge @p now: drain due memory completions, spawn,
     * issue per sub-core. Returns the next edge this unit wants service
     * at (kTickMax = stalled until a completion or wake), which the
     * environment's cycle driver records directly — the return value
     * replaces a per-tick `requestUnitTick` upcall. Called only by that
     * driver (and by `wake()` indirectly through a tick request).
     */
    Tick tick(Tick now);

    /** Number of currently live (non-idle) uthread slots. */
    unsigned activeSlots() const { return live_slots_; }
    unsigned totalSlots() const
    {
        return cfg_.subcores * cfg_.slots_per_subcore;
    }

    const NdpUnitStats &stats() const { return stats_; }

    /**
     * Stats with the still-open run-until-stall burst folded in as if it
     * ended now (non-mutating): without this, a unit whose longest burst
     * is its final one would never report it — recordBurst only fires
     * when a later tick observes a gap.
     */
    NdpUnitStats
    statsSnapshot() const
    {
        NdpUnitStats s = stats_;
        s.recordBurst(burst_len_);
        // Fold the open burst's issue accumulators the same way: the
        // per-issue counts live in acc_* until the burst closes.
        s.instructions += acc_instructions_;
        s.vector_instructions += acc_vector_instructions_;
        s.scalar_instructions += acc_instructions_ - acc_vector_instructions_;
        return s;
    }

    const NdpUnitConfig &config() const { return cfg_; }
    const TlbStats &dtlbStats() const { return dtlb_.stats(); }

    /** Invalidate one page translation (Table II, privileged path). */
    void
    shootdownTlb(Asid asid, Addr va)
    {
        dtlb_.shootdown(asid, va);
        for (auto &e : func_tcache_)
            e.valid = false;
    }

    /** Scratchpad backing store (per unit; shared by all uthreads, A3). */
    std::vector<std::uint8_t> &scratchpad() { return spad_; }

    // isa::MemoryIf — functional path used by the executor at issue time.
    // Routes scratchpad-window VAs to the unit scratchpad / argument
    // window and everything else through translation to device memory.
    void read(Addr va, void *out, unsigned size) override;
    void write(Addr va, const void *in, unsigned size) override;
    std::uint64_t amo(AmoOp op, Addr va, std::uint64_t operand,
                      unsigned width) override;

  private:
    enum class SlotState : std::uint8_t { Idle, Ready, WaitMem };

    struct SubCore;

    struct Slot
    {
        SlotState state = SlotState::Idle;
        isa::UthreadContext ctx;
        KernelInstance *instance = nullptr;
        const isa::DecodedSection *section = nullptr;
        /** Owning sub-core (stable; set once at construction). */
        SubCore *owner = nullptr;
        /** Index within the owning sub-core (stable; ReadySched key). */
        std::uint8_t index = 0;
        Tick ready_at = 0;
        unsigned outstanding_loads = 0;
        bool finish_pending = false;
        /** Instructions issued by the current uthread; flushed into
         *  `instance->instructions` once at retirement (finishThread)
         *  instead of a per-issue read-modify-write of a foreign
         *  cache line shared by every unit running the instance. */
        std::uint64_t issued_insts = 0;
    };

    struct SubCore
    {
        std::vector<Slot> slots;
        std::uint64_t reg_bytes_used = 0;
        unsigned rr_next = 0;
        /** Idle slots as a bitmask: spawn picks the lowest free slot with
         *  a count-trailing-zeros instead of walking the slot array. */
        std::uint64_t idle_mask = 0;
        unsigned idle_count = 0;
        /** Slots in WaitMem (for stall-reason classification only). */
        unsigned waitmem_count = 0;
        /** Ready ring + ready_at-ordered wake list: the issue stage only
         *  ever touches slots that can actually issue. */
        ReadySched sched;
        /** Next-free tick per FuType (indexed by static_cast). */
        std::array<Tick, 7> fu_free{};
    };

    /**
     * One memory completion parked on the unit, to be applied by the next
     * tick at or after `when`. This is the fused-delivery landing zone:
     * a completing memory stage calls the access callback synchronously
     * (stamped with the logical completion tick, possibly in the future),
     * and the unit's cycle driver applies it at the edge — no
     * response-crossbar event, no unit-wake event.
     *
     * Parked entries live in a (when, seq) min-heap (same pattern as the
     * DRAM channel completion heap): a drain pops only the due prefix,
     * where the old flat vector re-scanned every parked entry — dozens
     * of in-flight posted stores — on every drain edge. Delivery order
     * is (when, arrival) — time-ordered, FIFO within a tick.
     */
    struct PendingCompletion
    {
        Slot *slot;           ///< waiting slot (nullptr for posted stores)
        KernelInstance *inst; ///< instance for drain accounting
        Tick when;            ///< logical completion tick
        std::uint64_t seq;    ///< arrival order (heap tie-break)
        MemOp op;             ///< != Read drains a store at delivery
        bool blocking;        ///< decrements slot->outstanding_loads

        /** Min-heap ordering: std::push_heap keeps the *max* on top, so
         *  "greater" makes the earliest (when, seq) the top element. */
        bool
        operator<(const PendingCompletion &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Park a completion; requests a tick at the edge >= when. */
    void queueCompletion(Slot *slot, KernelInstance *inst, MemOp op,
                         bool blocking, Tick when);
    /** Apply parked completions whose tick has been reached. */
    void drainCompletions(Tick now);

    void scheduleTick(Tick at);
    bool trySpawn(SubCore &sc, Tick now);
    /**
     * One ready-ring issue pass over @p sc: round-robin-selects among the
     * issue-eligible slots only (bitmask rotate + ctz), issues at most one
     * µop, and returns the earliest tick any Ready slot next wants
     * service (kTickMax if none). Slots waiting on FU latency live in the
     * sub-core's ready_at-ordered wake list; slots waiting on memory are
     * not visited at all — `completeBlockingAccess` re-inserts them into
     * the ring directly. Selection order is bit-exact with the previous
     * full slot walk (property-tested against a reference walk).
     * @p new_cycle gates the per-cycle scheduler stats so same-edge
     * re-ticks do not double-count an already-counted edge.
     */
    Tick issueOne(unsigned sc_idx, SubCore &sc, Tick now, bool new_cycle,
                  bool &issued);
    void finishThread(SubCore &sc, Slot &slot);
    /**
     * Issue the timing side of one instruction's memory references.
     * Global refs get real completion callbacks; blocking scratchpad
     * refs have a fixed, known latency, so when they are the only thing
     * the uthread waits on the method schedules nothing and instead
     * returns the tick the slot becomes ready (0 = no pure-scratchpad
     * wait; the caller applies it to ready_at).
     */
    Tick handleMemRefs(unsigned sc_idx, SubCore &sc, Slot &slot,
                       const isa::StepResult &res, Tick now);
    /** Translation delay + global access for one ref; wakes slot. */
    void issueGlobalAccess(SubCore &sc, Slot &slot, const isa::MemRef &ref,
                           Tick now, bool blocking);
    /**
     * Issue the timing access itself (after any DRAM-TLB fill delay).
     * Split out so the D-TLB fill continuation captures only scalars —
     * capturing a ready-made closure used to overflow the 48 B inline
     * buffer and heap-allocate once per fill.
     */
    void launchGlobalAccess(Slot *slot, KernelInstance *inst, MemOp op,
                            bool blocking, Addr pa, std::uint32_t size,
                            Tick issued_at);
    bool hasIdleSlot() const;
    Tick eqNextEdge() const;
    /**
     * First cycle edge at or after @p t. Runs on every tick re-arm and
     * every queued completion, so the modulo is computed with a
     * precomputed reciprocal (one 64x64->128 multiply) instead of an
     * integer divide; the guard falls back to `%` for ticks beyond the
     * reciprocal's exactness range (~2^64/period — hours of simulated
     * time at 1 ps/tick).
     */
    Tick
    edgeAtOrAfter(Tick t) const
    {
        Tick r;
        if (t < period_div_limit_) {
            std::uint64_t q = static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(t) * period_inv_) >> 64);
            r = t - q * cfg_.period;
        } else {
            r = t % cfg_.period;
        }
        return r == 0 ? t : t + (cfg_.period - r);
    }
    /** Wake a slot after one outstanding blocking access completes.
     *  Called only from drainCompletions (inside tick). */
    void completeBlockingAccess(Slot *slot, Tick when);

    /** Functional scratchpad/arg-window routing helpers. */
    std::uint8_t *spadPointer(Addr va, unsigned size);

    /**
     * Functional VA->PA translation with a one-entry last-page cache:
     * translation runs per element on the functional path *and* per sector
     * on the timing path, and both are strongly page-local. Invalidated on
     * TLB shootdown (page unmap must be accompanied by a shootdown,
     * Table II). Throws KernelTrap on unmapped VAs (caught at the issue
     * stage; the instance is killed with NdpError::UnmappedAddress).
     */
    Addr translateCached(Asid asid, Addr va);

    NdpUnitEnv &env_;
    NdpUnitConfig cfg_;
    std::vector<SubCore> subcores_;
    std::vector<std::uint8_t> spad_;
    Tlb dtlb_;

    /**
     * Small direct-mapped functional translation cache (see
     * translateCached). A few entries instead of one: kernels commonly
     * stream from 2-3 distinct buffers (distinct pages) per iteration,
     * which would thrash a single entry every access.
     */
    struct FuncTcacheEntry
    {
        bool valid = false;
        Asid asid = 0;
        std::uint64_t vpn = 0;
        Addr pa_page = 0;
    };
    static constexpr unsigned kFuncTcacheEntries = 8;
    std::array<FuncTcacheEntry, kFuncTcacheEntries> func_tcache_;
    /** Per-unit frame-lookup hint for the functional memory path. */
    SparseMemory::FrameHint frame_hint_;
    std::uint64_t page_mask_ = 0; ///< translationPageSize() - 1
    unsigned page_shift_ = 0;     ///< log2(translationPageSize())
    /** ceil(2^64 / period) and the tick bound below which the reciprocal
     *  multiply computes t / period exactly (see edgeAtOrAfter). */
    std::uint64_t period_inv_ = 0;
    Tick period_div_limit_ = 0;
    unsigned live_slots_ = 0;
    bool work_maybe_available_ = true;
    /** Burst tracking: previous ticked edge and current run length. */
    Tick last_tick_ = kTickMax;
    std::uint64_t burst_len_ = 0;
    /**
     * Per-burst issue accumulators: the issue loop bumps these two local
     * counters instead of three NdpUnitStats fields per instruction; the
     * burst-close path in tick() folds them into stats_ (scalar count is
     * derived as instructions - vector there, saving the third per-issue
     * increment and its branch). statsSnapshot() folds non-mutatingly.
     */
    std::uint64_t acc_instructions_ = 0;
    std::uint64_t acc_vector_instructions_ = 0;

    /** Fold the open burst's issue accumulators into stats_. */
    void
    flushIssueStats()
    {
        stats_.instructions += acc_instructions_;
        stats_.vector_instructions += acc_vector_instructions_;
        stats_.scalar_instructions +=
            acc_instructions_ - acc_vector_instructions_;
        acc_instructions_ = 0;
        acc_vector_instructions_ = 0;
    }
    /** Parked memory completions: (when, seq) min-heap over a capacity-
     *  retaining vector (drained by tick; heap top tick == pending_min_). */
    std::vector<PendingCompletion> pending_;
    std::uint64_t pending_seq_ = 0;
    Tick pending_min_ = kTickMax;
    NdpUnitStats stats_;

    /** Functional context of the uthread currently in step(). */
    Slot *current_slot_ = nullptr;
};

} // namespace m2ndp
