/**
 * @file
 * NDP controller: handles M2func calls (Table II), manages the kernel
 * registry and kernel-instance lifecycle, and acts as the uthread
 * generator distributing work to NDP units (Sections III-B/C/E/G).
 *
 * Implemented like the microcontrollers in GPUs [15]: a small command
 * processor behind the packet filter. M2func writes carry the function
 * arguments in the write-data payload; return values are written back to
 * the M2func region so a subsequent read to the same address fetches them
 * (synchronous launches defer that read's response until the kernel
 * finishes).
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hh"
#include "common/units.hh"
#include "isa/assembler.hh"
#include "ndp/kernel.hh"
#include "ndp/ndp_unit.hh"
#include "sim/event_queue.hh"

namespace m2ndp {

/** M2func function indices (offset = index << 5, Table II). */
enum class M2Func : std::uint32_t {
    RegisterKernel = 0,
    UnregisterKernel = 1,
    LaunchKernel = 2,
    PollKernelStatus = 3,
    ShootdownTlbEntry = 4,
};

/** Byte stride between M2func entry points (1 << 5, Section III-B). */
inline constexpr std::uint64_t kM2FuncStride = 32;

/**
 * Offsets at and beyond this function index are additional LaunchKernel
 * slots, one return value each, so multiple host threads can have launches
 * in flight concurrently (Section III-B: "the offsets can be strided...
 * multiple arguments and return values can be communicated"; Section
 * III-C: concurrent kernels from multiple host threads as with MPS).
 */
inline constexpr std::uint64_t kM2FuncLaunchSlotBase = 8;
inline constexpr unsigned kM2FuncLaunchSlots = 56;

/**
 * Launch slots are spaced two stride units (64 B) apart: a launch payload
 * is up to 64 B, so at the base 32 B stride a full payload written to
 * slot k would alias slot k+1's offset — clobbering its staged return
 * value while that slot's deferred read is still in flight. The 64 KiB
 * M2func region has room to spare (Section III-B: "the offsets can be
 * strided").
 */
inline constexpr std::uint64_t kM2FuncLaunchSlotStride = 2;

/**
 * Legacy error return value (Table II: ERR is a negative value). New
 * code signals failures with specific `NdpError` codes (common/error.hh);
 * kNdpErr remains as the catch-all, numerically NdpError::Unknown.
 */
inline constexpr std::int64_t kNdpErr =
    static_cast<std::int64_t>(NdpError::Unknown);

/** Launch payload byte 0: synchronous-launch flag (Section III-B). */
inline constexpr std::uint8_t kLaunchFlagSync = 0x1;
/**
 * Launch payload byte 0: the 64 B store carries *two* compact 32 B launch
 * descriptors instead of one full-format launch — one store, two kernel
 * launches, amortizing the CXL.mem store per launch under load. Each half
 * owns one return offset of the 64 B slot pair (fn_index and fn_index+1),
 * so the deferred-read completion protocol is unchanged per launch.
 * Compact half layout: [0] flags, [1] arg size (<= 8), [2] WRR weight,
 * [4..7] kernel id (u32), [8..15] pool base, [16..23] pool bound,
 * [24..31] inline args.
 */
inline constexpr std::uint8_t kLaunchFlagCompact = 0x2;
/** Bytes per compact descriptor; two fill one launch-slot stride. */
inline constexpr unsigned kCompactLaunchBytes = 32;
/** Inline-argument capacity of a compact descriptor. */
inline constexpr unsigned kCompactMaxArgBytes = 8;

/**
 * Wire format of an M2func write payload (little-endian, max 64 B). Fixed
 * inline storage: payloads are staged and passed by value on the launch
 * path without touching the heap.
 */
struct M2FuncPayload
{
    static constexpr std::size_t kMaxBytes = 64;

    std::array<std::uint8_t, kMaxBytes> bytes{};
    std::uint8_t size = 0;

    template <typename T>
    T
    get(std::size_t offset) const
    {
        T v{};
        if (offset + sizeof(T) <= size)
            std::memcpy(&v, bytes.data() + offset, sizeof(T));
        return v;
    }
};

/** Environment provided by the device. */
class NdpControllerEnv
{
  public:
    virtual ~NdpControllerEnv() = default;
    virtual EventQueue &eventQueue() = 0;
    virtual unsigned numUnits() = 0;
    virtual unsigned slotsPerUnit() = 0;
    virtual std::uint64_t unitScratchpadBytes() = 0;
    /** Wake every NDP unit (new work became available). */
    virtual void wakeAllUnits() = 0;
    /** Read kernel source text from (asid-translated) device memory. */
    virtual bool readKernelText(Asid asid, Addr va, std::uint32_t size,
                                std::string &out) = 0;
    /** Flush NDP-unit instruction caches (on unregister, Section III-F). */
    virtual void flushInstructionCaches() = 0;
    /** TLB shootdown across units + DRAM-TLB (Table II, privileged). */
    virtual void shootdownTlb(Asid asid, Addr va) = 0;
};

/** Controller statistics. */
struct NdpControllerStats
{
    std::uint64_t kernels_registered = 0;
    std::uint64_t registrations_rejected = 0;
    std::uint64_t launches = 0;
    std::uint64_t launches_rejected = 0;
    /** Launches that arrived as compact halves of a batched 64 B store. */
    std::uint64_t launches_batched = 0;
    std::uint64_t polls = 0;
    std::uint64_t instances_completed = 0;
    /** Instances that completed with an error (traps + watchdog). */
    std::uint64_t instances_faulted = 0;
    /** Instances killed by the watchdog budget specifically. */
    std::uint64_t watchdog_kills = 0;
};

/** Controller limits (Table IV: max 48 concurrent kernels). */
struct NdpControllerConfig
{
    unsigned max_concurrent_instances = 48;
    unsigned launch_queue_capacity = 4096;
    std::uint64_t max_payload_bytes = 64;
    /**
     * Per-instance watchdog budget in ticks from activation (0 =
     * disabled, the default — no events are scheduled). An instance
     * still running when the budget expires is killed with
     * NdpError::WatchdogTimeout; its uthread slots, scratchpad,
     * register-file budget, and pooled packets recycle through the
     * normal retirement path.
     */
    Tick watchdog_budget = 0;
};

/**
 * The controller. The device routes filter-matched CXL.mem packets here
 * and implements NdpUnitEnv::pullWork by delegating to this class.
 */
class NdpController
{
  public:
    using Config = NdpControllerConfig;

    NdpController(NdpControllerEnv &env, Config cfg = NdpControllerConfig{});

    /**
     * Handle an M2func *write* (function call). @p offset is the byte
     * offset into the process' M2func region.
     * @return the function's (possibly not-yet-readable) return value slot
     * is updated internally; the write itself is acked by the device.
     */
    void handleWrite(Asid asid, std::uint64_t offset,
                     const M2FuncPayload &payload);

    /**
     * Handle an M2func *read* (return-value fetch). @p respond is invoked
     * (possibly later, for synchronous launches) with the value.
     */
    void handleRead(Asid asid, std::uint64_t offset,
                    InlineCallback<void(std::int64_t)> respond);

    // ---- uthread generator interface (used by NdpUnitEnv) ----
    std::optional<SpawnItem> pullWork(unsigned unit);
    void requeueWork(unsigned unit, const SpawnItem &item);
    void uthreadFinished(KernelInstance *inst);
    void storeIssued(KernelInstance *inst);
    void storeDrained(KernelInstance *inst, Tick when);

    // ---- direct (driver-level) API used by tests and host runtime ----
    std::int64_t registerKernel(Asid asid, const std::string &text,
                                const KernelResources &res);
    std::int64_t launch(Asid asid, std::int64_t kernel_id, bool synchronous,
                        Addr pool_base, Addr pool_bound,
                        const std::uint8_t *args, std::uint32_t args_size,
                        InstanceCompleteFn on_complete = {},
                        unsigned weight = 1);

    /** Convenience overload for tests/drivers holding args in a vector. */
    std::int64_t
    launch(Asid asid, std::int64_t kernel_id, bool synchronous,
           Addr pool_base, Addr pool_bound,
           const std::vector<std::uint8_t> &args,
           InstanceCompleteFn on_complete = {})
    {
        return launch(asid, kernel_id, synchronous, pool_base, pool_bound,
                      args.data(), static_cast<std::uint32_t>(args.size()),
                      std::move(on_complete));
    }
    KernelStatus status(std::int64_t instance_id) const;

    /**
     * Error code of a live or completed instance (a negative NdpError
     * value; 0 for clean instances, unknown ids included).
     */
    std::int64_t instanceError(std::int64_t instance_id) const;

    /**
     * uthreads spawned so far by a *live* instance in its current phase
     * (0 for unknown/completed ids). Fairness tests read this to measure
     * the issue share each tenant received from the weighted cursor.
     */
    std::uint64_t instanceSpawned(std::int64_t instance_id) const;

    /**
     * Kill a queued or running instance with @p code (a negative
     * NdpError value): no further uthreads spawn, already-running ones
     * retire through the normal path, and the instance completes with
     * the error code once spawned uthreads and posted stores drain.
     * Used by the watchdog and by the device when a uthread traps.
     */
    void killInstance(KernelInstance *inst, std::int64_t code);

    /**
     * Attach a completion observer to a live instance; fires immediately
     * (same tick) if the instance already finished. Used by the host
     * runtime to model completion notification.
     */
    void onInstanceComplete(std::int64_t instance_id, InstanceCompleteFn cb);

    const NdpControllerStats &stats() const { return stats_; }
    unsigned activeInstances() const
    {
        return static_cast<unsigned>(active_.size());
    }
    std::size_t queuedLaunches() const { return pending_.size(); }

    /** Access a registered kernel (for examples/tests). */
    const NdpKernel *kernelById(std::int64_t id) const;

  private:
    struct ReturnSlot
    {
        std::int64_t value = kNdpErr;
        bool ready = true;
        std::vector<InlineCallback<void(std::int64_t)>> waiters;
    };

    std::uint64_t
    slotKey(Asid asid, std::uint64_t fn_index) const
    {
        return (static_cast<std::uint64_t>(asid) << 12) | fn_index;
    }

    void setReturn(Asid asid, std::uint64_t fn_index, std::int64_t value,
                   bool ready);
    void resolveReturn(Asid asid, std::uint64_t fn_index,
                       std::int64_t value);
    /** Launch entry point shared by the base offset and the extra slots. */
    void handleLaunchWrite(Asid asid, std::uint64_t fn_index,
                           const M2FuncPayload &payload);
    /** One compact 32 B half of a batched launch store. */
    void handleCompactLaunch(Asid asid, std::uint64_t fn_index,
                             const M2FuncPayload &payload, unsigned offset);
    /** Common tail of the launch-write paths: launch + return plumbing. */
    void launchParsed(Asid asid, std::uint64_t fn_index, bool sync,
                      std::int64_t kernel_id, Addr base, Addr bound,
                      const std::uint8_t *args, std::uint32_t args_size,
                      unsigned weight);

    /** Try to move pending launches into the active set. */
    void admitPending();
    void activate(std::unique_ptr<KernelInstance> inst);
    void beginPhase(KernelInstance *inst, InstancePhase phase,
                    std::size_t section_index);
    void maybeAdvancePhase(KernelInstance *inst);
    void completeInstance(KernelInstance *inst, Tick when);
    std::uint64_t phaseTarget(const KernelInstance *inst) const;

    /** Per-unit scratchpad data allocator (identical layout on all units). */
    std::optional<std::uint64_t> spadAllocate(std::uint64_t size);
    void spadFree(std::uint64_t offset, std::uint64_t size);

    NdpControllerEnv &env_;
    Config cfg_;
    isa::Assembler assembler_;

    std::int64_t next_kernel_id_ = 1;
    std::int64_t next_instance_id_ = 1;
    std::unordered_map<std::int64_t, std::unique_ptr<NdpKernel>> kernels_;

    std::deque<std::unique_ptr<KernelInstance>> pending_;
    std::vector<std::unique_ptr<KernelInstance>> active_;
    /** Round-robin cursor over active_ for pullWork fairness. */
    std::size_t rr_instance_ = 0;
    /**
     * Remaining consecutive spawns owed to the instance under the cursor
     * (weighted round robin). 0 means the cursor advances after the next
     * spawn, which for all-weight-1 instances degenerates to the original
     * strict RR — existing workloads stay bit-exact.
     */
    unsigned rr_credit_ = 0;
    std::unordered_map<std::int64_t, KernelInstance *> instances_by_id_;
    /** Completed instance ids (for poll-after-completion). */
    std::unordered_map<std::int64_t, Tick> completed_;
    /** Error codes of completed-with-error instances (status/poll). */
    std::unordered_map<std::int64_t, std::int64_t> completed_errors_;

    /** Work requeued by units (register-file pressure). */
    std::vector<std::vector<SpawnItem>> requeued_;

    std::unordered_map<std::uint64_t, ReturnSlot> returns_;
    std::unordered_map<Asid, std::int64_t> last_poll_target_;

    /** Free list over per-unit scratchpad data space. */
    std::map<std::uint64_t, std::uint64_t> spad_free_; // offset -> size

    NdpControllerStats stats_;
};

} // namespace m2ndp
