/**
 * @file
 * CXL link and protocol-stack latency model.
 *
 * CXL.mem: the paper's Fig. 2 breaks a CXL.mem round trip into ~52-70 ns of
 * protocol stack plus wire. We model each direction as a fixed stack+wire
 * latency plus bandwidth-arbitrated serialization (64 GB/s per direction for
 * CXL 3.0 / PCIe 6.0 x8, Table IV). Reads send a ~16 B M2S Req and receive a
 * 64 B S2M DRS; writes send a 64+16 B M2S RwD and receive an S2M NDR.
 *
 * CXL.io/PCIe: used only for device management and for the baseline
 * offloading schemes; it is modeled by its observed end-to-end latencies
 * (Section II-C): ~500 ns one-way, ~1.5 us for a direct-MMIO doorbell
 * round trip, ~4 us for a ring-buffer kernel launch.
 */

#pragma once

#include <cstdint>

#include "common/units.hh"
#include "cxl/fault.hh"
#include "sim/event_queue.hh"

namespace m2ndp {

class CxlLink;

/** Configuration of one CXL.mem link (both directions symmetric). */
struct CxlLinkConfig
{
    double bandwidth_gbps = 64.0; ///< per direction, GB/s
    Tick oneway_latency = 35000;  ///< stack + wire, one direction (35 ns)
    std::uint32_t req_header_bytes = 16; ///< M2S Req / S2M NDR size
    std::uint32_t data_bytes = 64;       ///< payload granularity
};

/** Per-direction traffic statistics. */
struct CxlDirStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    Tick queueing = 0;
};

/**
 * One direction of a CXL link: fixed latency + serialization at the link
 * rate. Delivery returns the arrival tick; callers schedule their own
 * continuation.
 */
class CxlDirection
{
  public:
    CxlDirection(EventQueue &eq, const CxlLinkConfig &cfg, CxlLink *link)
        : eq_(eq), cfg_(cfg), link_(link)
    {
    }

    /** Book transmission of @p bytes; @return arrival tick at the far end. */
    Tick send(std::uint32_t bytes);

    const CxlDirStats &stats() const { return stats_; }

  private:
    EventQueue &eq_;
    const CxlLinkConfig &cfg_;
    CxlLink *link_; ///< owning link, consulted for fault injection
    Tick link_free_ = 0;
    CxlDirStats stats_;
};

/** A full-duplex CXL.mem link between host (upstream) and device. */
class CxlLink
{
  public:
    CxlLink(EventQueue &eq, CxlLinkConfig cfg = {}, FaultConfig fault = {})
        : cfg_(cfg), down_(eq, cfg_, this), up_(eq, cfg_, this),
          injector_(fault), faults_armed_(injector_.armed())
    {
    }

    const CxlLinkConfig &config() const { return cfg_; }

    /** Host -> device direction. */
    CxlDirection &down() { return down_; }
    /** Device -> host direction. */
    CxlDirection &up() { return up_; }

    // ---- fault injection (zero-cost when not armed) ----

    /** True when the injector can fire (single predictable branch). */
    bool faultsArmed() const { return faults_armed_; }

    /** Permanent link failure: the device behind it is unreachable. */
    bool isDown() const { return down_flag_; }

    /** Force the link down now (tests, external supervision). */
    void
    forceLinkDown()
    {
        if (!down_flag_) {
            down_flag_ = true;
            injector_.noteLinkDown();
        }
    }

    /** Per-message fault roll; called by the directions when armed. */
    Tick
    injectOnMessage(Tick now, std::uint32_t bytes)
    {
        if (!down_flag_ && injector_.shouldGoDown(now))
            forceLinkDown();
        return injector_.onMessage(bytes);
    }

    const FaultStats &faultStats() const { return injector_.stats(); }
    const FaultConfig &faultConfig() const { return injector_.config(); }

    /** Bytes on the wire for a read request (header only). */
    std::uint32_t readReqBytes() const { return cfg_.req_header_bytes; }
    /** Bytes on the wire for a write request carrying @p payload bytes. */
    std::uint32_t
    writeReqBytes(std::uint32_t payload) const
    {
        return cfg_.req_header_bytes + payload;
    }
    /** Bytes for a data response. */
    std::uint32_t
    dataRespBytes(std::uint32_t payload) const
    {
        return cfg_.req_header_bytes + payload;
    }
    /** Bytes for a no-data response. */
    std::uint32_t ndrBytes() const { return cfg_.req_header_bytes; }

  private:
    CxlLinkConfig cfg_;
    CxlDirection down_;
    CxlDirection up_;
    FaultInjector injector_;
    bool faults_armed_ = false;
    bool down_flag_ = false;
};

/**
 * Latency constants for CXL.io/PCIe-based NDP management (Section II-C and
 * Fig. 5). These model the *observed* end-to-end costs of the conventional
 * schemes; y is the one-way CXL.io latency used in the Fig. 5 analysis.
 */
struct CxlIoConfig
{
    Tick oneway_latency = 500 * kNs; ///< y in Fig. 5
    /**
     * Extra host-side latency of the ring-buffer scheme on top of link
     * round trips: user->kernel transition, ring manipulation, doorbell.
     * Fig. 5b charges 8 one-way trips total for launch + error check.
     */
    unsigned ringbuffer_oneways = 8;
    /** Fig. 5c: direct MMIO doorbell launch costs 3 one-way trips. */
    unsigned direct_oneways = 3;
    /** Completion-poll cost over PCIe (2-3 us per Section II-C). */
    Tick poll_latency = 2 * kUs;
};

} // namespace m2ndp
