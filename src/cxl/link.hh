/**
 * @file
 * CXL link and protocol-stack latency model.
 *
 * CXL.mem: the paper's Fig. 2 breaks a CXL.mem round trip into ~52-70 ns of
 * protocol stack plus wire. We model each direction as a fixed stack+wire
 * latency plus bandwidth-arbitrated serialization (64 GB/s per direction for
 * CXL 3.0 / PCIe 6.0 x8, Table IV). Reads send a ~16 B M2S Req and receive a
 * 64 B S2M DRS; writes send a 64+16 B M2S RwD and receive an S2M NDR.
 *
 * CXL.io/PCIe: used only for device management and for the baseline
 * offloading schemes; it is modeled by its observed end-to-end latencies
 * (Section II-C): ~500 ns one-way, ~1.5 us for a direct-MMIO doorbell
 * round trip, ~4 us for a ring-buffer kernel launch.
 */

#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.hh"
#include "cxl/fault.hh"
#include "sim/event_queue.hh"

namespace m2ndp {

class CxlLink;

/** Configuration of one CXL.mem link (both directions symmetric). */
struct CxlLinkConfig
{
    double bandwidth_gbps = 64.0; ///< per direction, GB/s
    Tick oneway_latency = 35000;  ///< stack + wire, one direction (35 ns)
    std::uint32_t req_header_bytes = 16; ///< M2S Req / S2M NDR size
    std::uint32_t data_bytes = 64;       ///< payload granularity
};

/** Per-direction traffic statistics. */
struct CxlDirStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    Tick queueing = 0;
};

/**
 * One direction of a CXL link: fixed latency + serialization at the link
 * rate. Delivery returns the arrival tick; callers schedule their own
 * continuation. Each direction books time on the queue of the partition
 * that *sends* on it and owns its own fault injector, so the fault
 * schedule is a pure function of (direction seed, per-direction message
 * sequence) — thread-count independent under partitioned simulation.
 */
class CxlDirection
{
  public:
    CxlDirection(EventQueue &eq, const CxlLinkConfig &cfg, FaultConfig fault)
        : eq_(eq), cfg_(cfg), injector_(fault),
          faults_armed_(injector_.armed())
    {
    }

    /** Book transmission of @p bytes; @return arrival tick at the far end. */
    Tick send(std::uint32_t bytes);

    const CxlDirStats &stats() const { return stats_; }
    const FaultInjector &injector() const { return injector_; }

  private:
    friend class CxlLink;

    EventQueue &eq_;
    const CxlLinkConfig &cfg_;
    FaultInjector injector_;
    bool faults_armed_ = false;
    Tick link_free_ = 0;
    CxlDirStats stats_;
};

/** A full-duplex CXL.mem link between host (upstream) and device. */
class CxlLink
{
  public:
    /**
     * Partitioned form: the host->device direction is sender-clocked on
     * @p host_eq, the device->host direction on @p dev_eq. Each gets an
     * independent injector seed derived from the base seed.
     */
    CxlLink(EventQueue &host_eq, EventQueue &dev_eq, CxlLinkConfig cfg = {},
            FaultConfig fault = {})
        : cfg_(cfg), down_(host_eq, cfg_, deriveFault(fault, 0xD0F7u)),
          up_(dev_eq, cfg_, deriveFault(fault, 0x09B1u)),
          fault_cfg_(fault)
    {
    }

    /** Single-queue form (raw benches, unit tests). */
    explicit CxlLink(EventQueue &eq, CxlLinkConfig cfg = {},
                     FaultConfig fault = {})
        : CxlLink(eq, eq, cfg, fault)
    {
    }

    const CxlLinkConfig &config() const { return cfg_; }

    /** Host -> device direction. */
    CxlDirection &down() { return down_; }
    /** Device -> host direction. */
    CxlDirection &up() { return up_; }

    // ---- fault injection (zero-cost when not armed) ----

    /**
     * Permanent link failure: the device behind it is unreachable at or
     * after tick @p t. A pure function of time — never of traffic — so
     * host- and device-side observers at different partition clocks agree
     * on exactly when the link died, independent of thread count.
     */
    bool
    isDownAt(Tick t) const
    {
        return (fault_cfg_.link_down_at != 0 &&
                t >= fault_cfg_.link_down_at) ||
               (forced_ && t >= forced_at_);
    }

    /** Tick the link went (or will go) down; kTickMax when healthy. */
    Tick
    downAt() const
    {
        Tick at = kTickMax;
        if (fault_cfg_.link_down_at != 0)
            at = fault_cfg_.link_down_at;
        if (forced_)
            at = std::min(at, forced_at_);
        return at;
    }

    /**
     * Force the link down at @p at (tests, external supervision). Called
     * from non-event user code with all partitions parked.
     */
    void
    forceLinkDown(Tick at)
    {
        if (!forced_) {
            forced_ = true;
            forced_at_ = at;
        }
    }

    /** Force the link down at the host-side clock's current tick. */
    void forceLinkDown();

    /** Merged both-direction fault counters (bit-exact per seed). */
    FaultStats faultStats() const;
    const FaultConfig &faultConfig() const { return fault_cfg_; }

    /** Bytes on the wire for a read request (header only). */
    std::uint32_t readReqBytes() const { return cfg_.req_header_bytes; }
    /** Bytes on the wire for a write request carrying @p payload bytes. */
    std::uint32_t
    writeReqBytes(std::uint32_t payload) const
    {
        return cfg_.req_header_bytes + payload;
    }
    /** Bytes for a data response. */
    std::uint32_t
    dataRespBytes(std::uint32_t payload) const
    {
        return cfg_.req_header_bytes + payload;
    }
    /** Bytes for a no-data response. */
    std::uint32_t ndrBytes() const { return cfg_.req_header_bytes; }

  private:
    /** Derive an independent per-direction injector seed. */
    static FaultConfig deriveFault(FaultConfig fc, std::uint64_t salt);

    CxlLinkConfig cfg_;
    CxlDirection down_;
    CxlDirection up_;
    FaultConfig fault_cfg_;
    bool forced_ = false;  ///< forceLinkDown called
    Tick forced_at_ = 0;   ///< tick of the forced failure
};

/**
 * Latency constants for CXL.io/PCIe-based NDP management (Section II-C and
 * Fig. 5). These model the *observed* end-to-end costs of the conventional
 * schemes; y is the one-way CXL.io latency used in the Fig. 5 analysis.
 */
struct CxlIoConfig
{
    Tick oneway_latency = 500 * kNs; ///< y in Fig. 5
    /**
     * Extra host-side latency of the ring-buffer scheme on top of link
     * round trips: user->kernel transition, ring manipulation, doorbell.
     * Fig. 5b charges 8 one-way trips total for launch + error check.
     */
    unsigned ringbuffer_oneways = 8;
    /** Fig. 5c: direct MMIO doorbell launch costs 3 one-way trips. */
    unsigned direct_oneways = 3;
    /** Completion-poll cost over PCIe (2-3 us per Section II-C). */
    Tick poll_latency = 2 * kUs;
};

} // namespace m2ndp
