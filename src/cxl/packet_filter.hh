/**
 * @file
 * M2func packet filter (Section III-B).
 *
 * Sits at the CXL memory's input port and checks every incoming CXL.mem
 * request against per-process M2func regions. Matching requests are
 * diverted to the NDP controller as function calls; everything else is a
 * normal memory access. Each entry is 18 B: 64-bit base, 64-bit bound,
 * 16-bit ASID — so 1024 processes cost only 18 KiB of SRAM.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hh"
#include "mem/page_table.hh"

namespace m2ndp {

/** One packet-filter entry (18 bytes of modeled SRAM). */
struct PacketFilterEntry
{
    Addr base = 0;
    Addr bound = 0; ///< exclusive
    Asid asid = 0;
};

/** Result of a filter match. */
struct PacketFilterMatch
{
    Asid asid;
    std::uint64_t offset; ///< byte offset of the access into the region
};

/** The filter itself. Entries are installed via the CXL.io path at init. */
class PacketFilter
{
  public:
    explicit PacketFilter(std::size_t max_entries = 1024)
        : max_entries_(max_entries)
    {
    }

    /**
     * Install an entry. Privileged operation (driver via CXL.io).
     * @return false if the table is full or the range overlaps an entry.
     */
    bool insert(Addr base, Addr bound, Asid asid);

    /** Remove the entry for @p asid. @return true if present. */
    bool remove(Asid asid);

    /** Check an incoming request address. */
    std::optional<PacketFilterMatch> match(Addr addr) const;

    std::size_t numEntries() const { return entries_.size(); }

    /** Modeled SRAM cost in bytes (18 B per entry). */
    std::uint64_t
    storageBytes() const
    {
        return static_cast<std::uint64_t>(max_entries_) * 18;
    }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t matches() const { return matches_; }

  private:
    std::size_t max_entries_;
    std::vector<PacketFilterEntry> entries_;
    mutable std::uint64_t lookups_ = 0;
    mutable std::uint64_t matches_ = 0;
};

} // namespace m2ndp
