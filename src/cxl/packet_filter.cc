#include "cxl/packet_filter.hh"

#include "common/log.hh"

namespace m2ndp {

bool
PacketFilter::insert(Addr base, Addr bound, Asid asid)
{
    if (entries_.size() >= max_entries_)
        return false;
    M2_ASSERT(base < bound, "empty M2func region");
    for (const auto &e : entries_) {
        bool overlap = base < e.bound && e.base < bound;
        if (overlap || e.asid == asid)
            return false;
    }
    entries_.push_back(PacketFilterEntry{base, bound, asid});
    return true;
}

bool
PacketFilter::remove(Asid asid)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->asid == asid) {
            entries_.erase(it);
            return true;
        }
    }
    return false;
}

std::optional<PacketFilterMatch>
PacketFilter::match(Addr addr) const
{
    ++lookups_;
    for (const auto &e : entries_) {
        if (addr >= e.base && addr < e.bound) {
            ++matches_;
            return PacketFilterMatch{e.asid, addr - e.base};
        }
    }
    return std::nullopt;
}

} // namespace m2ndp
