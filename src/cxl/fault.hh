/**
 * @file
 * Deterministic, seeded fault injection for the CXL link layer.
 *
 * Fault model (per direction-agnostic *message* — a request or response
 * flit train crossing the link in `CxlDirection::send`):
 *
 *  - **CRC bit-errors**: each wire bit flips with probability
 *    `bit_error_rate`; the per-message detection probability is
 *    `min(1, ber * bits)`. Real CXL links detect these with the flit CRC
 *    and resolve them in hardware via the link-layer retry buffer
 *    (LRSM replay), so the message is still delivered — the fault costs
 *    a replay round-trip (`crc_replay_penalty`) and is counted.
 *  - **Dropped flits**: with probability `drop_rate` the flit train is
 *    lost outright and recovered by an ack-timeout replay
 *    (`drop_replay_penalty`) — delivered late, counted separately.
 *  - **Link down**: at `link_down_at` (one-shot schedule, 0 = never)
 *    the link fails permanently. This is the only *unrecoverable* fault:
 *    the host port aborts in-flight accesses with a typed error and the
 *    runtime marks the device lost.
 *
 * Replay-resolution (rather than silent message loss) keeps fault runs
 * hang-free: the deferred M2func return read always completes, so no
 * launch can wedge waiting for a reply that never comes. The replay
 * penalty *occupies the link direction* (it models the LRSM blocking
 * retransmit), so later messages queue behind it and per-direction FIFO
 * ordering survives injection — protocols that rely on a read never
 * overtaking the write it follows stay correct.
 *
 * Determinism: one `Rng` draw per message, consumed in simulation order
 * on a single-threaded event queue — same seed, same traffic, same
 * fault schedule, bit-exact stats. The injector is only constructed
 * armed when a fault class is actually configured; the disabled check
 * on the send path is a single predictable branch.
 */

#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hh"
#include "common/units.hh"

namespace m2ndp {

/** Per-link fault-injection configuration (disabled by default). */
struct FaultConfig
{
    bool enabled = false;
    /** Seed for the per-link RNG (the System derives per-device seeds). */
    std::uint64_t seed = 0x5eedfa17u;
    /** Per wire-bit flip probability (CRC-detected, replay-resolved). */
    double bit_error_rate = 0.0;
    /** Per-message drop probability (ack-timeout replay). */
    double drop_rate = 0.0;
    /** Latency cost of a CRC-triggered link-layer replay. */
    Tick crc_replay_penalty = 100 * kNs;
    /** Latency cost of an ack-timeout replay after a dropped flit. */
    Tick drop_replay_penalty = 500 * kNs;
    /** One-shot permanent link failure at this tick (0 = never). */
    Tick link_down_at = 0;
};

/** Fault counters, bit-exact across same-seed runs. */
struct FaultStats
{
    std::uint64_t messages_checked = 0;
    std::uint64_t crc_replays = 0;
    std::uint64_t dropped_flits = 0;
    std::uint64_t link_down_events = 0;
    /** Total replay latency added to message delivery. */
    Tick replay_ticks = 0;
};

/** Seeded per-link injector; owned by `CxlLink`. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {
    }

    /** True when any fault class can actually fire. */
    bool
    armed() const
    {
        return cfg_.enabled &&
               (cfg_.bit_error_rate > 0.0 || cfg_.drop_rate > 0.0 ||
                cfg_.link_down_at != 0);
    }

    const FaultConfig &config() const { return cfg_; }
    const FaultStats &stats() const { return stats_; }

    /** Has the one-shot link-down schedule come due? */
    bool
    shouldGoDown(Tick now) const
    {
        return cfg_.link_down_at != 0 && now >= cfg_.link_down_at;
    }

    void noteLinkDown() { ++stats_.link_down_events; }

    /**
     * Roll the dice for one message of @p bytes. Returns the extra
     * delivery latency (0 for a clean message). Exactly one RNG draw
     * per message, regardless of outcome, so the fault schedule is a
     * pure function of (seed, message sequence).
     */
    Tick
    onMessage(std::uint32_t bytes)
    {
        ++stats_.messages_checked;
        double u = rng_.nextDouble();
        if (u < cfg_.drop_rate) {
            ++stats_.dropped_flits;
            stats_.replay_ticks += cfg_.drop_replay_penalty;
            return cfg_.drop_replay_penalty;
        }
        double p_crc = std::min(
            1.0, cfg_.bit_error_rate * static_cast<double>(bytes) * 8.0);
        if (u < cfg_.drop_rate + p_crc) {
            ++stats_.crc_replays;
            stats_.replay_ticks += cfg_.crc_replay_penalty;
            return cfg_.crc_replay_penalty;
        }
        return 0;
    }

  private:
    FaultConfig cfg_;
    Rng rng_;
    FaultStats stats_;
};

} // namespace m2ndp
