#include "cxl/link.hh"

#include <algorithm>

namespace m2ndp {

Tick
CxlDirection::send(std::uint32_t bytes)
{
    Tick penalty = 0;
    if (link_->faultsArmed()) [[unlikely]]
        penalty = link_->injectOnMessage(eq_.now(), bytes);
    Tick ser = serializationTicks(bytes, cfg_.bandwidth_gbps);
    Tick start = std::max(eq_.now(), link_free_);
    // A link-layer replay (LRSM) blocks the direction until the flit
    // retransmits, so the penalty occupies the link: later messages queue
    // behind it and per-direction FIFO ordering is preserved. Protocol
    // correctness depends on this — e.g. the deferred M2func return read
    // must never overtake the launch write it follows.
    Tick done = start + ser + penalty;
    link_free_ = done;
    stats_.messages += 1;
    stats_.bytes += bytes;
    stats_.queueing += start - eq_.now();
    return done + cfg_.oneway_latency;
}

} // namespace m2ndp
