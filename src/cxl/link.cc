#include "cxl/link.hh"

#include <algorithm>

#include "common/rng.hh"

namespace m2ndp {

Tick
CxlDirection::send(std::uint32_t bytes)
{
    Tick penalty = 0;
    if (faults_armed_) [[unlikely]]
        penalty = injector_.onMessage(bytes);
    Tick ser = serializationTicks(bytes, cfg_.bandwidth_gbps);
    Tick start = std::max(eq_.now(), link_free_);
    // A link-layer replay (LRSM) blocks the direction until the flit
    // retransmits, so the penalty occupies the link: later messages queue
    // behind it and per-direction FIFO ordering is preserved. Protocol
    // correctness depends on this — e.g. the deferred M2func return read
    // must never overtake the launch write it follows.
    Tick done = start + ser + penalty;
    link_free_ = done;
    stats_.messages += 1;
    stats_.bytes += bytes;
    stats_.queueing += start - eq_.now();
    return done + cfg_.oneway_latency;
}

FaultConfig
CxlLink::deriveFault(FaultConfig fc, std::uint64_t salt)
{
    fc.seed = SplitMix64(fc.seed ^ salt).next();
    return fc;
}

void
CxlLink::forceLinkDown()
{
    forceLinkDown(down_.eq_.now());
}

FaultStats
CxlLink::faultStats() const
{
    const FaultStats &d = down_.injector().stats();
    const FaultStats &u = up_.injector().stats();
    FaultStats s;
    s.messages_checked = d.messages_checked + u.messages_checked;
    s.crc_replays = d.crc_replays + u.crc_replays;
    s.dropped_flits = d.dropped_flits + u.dropped_flits;
    s.replay_ticks = d.replay_ticks + u.replay_ticks;
    s.link_down_events = forced_ || fault_cfg_.link_down_at != 0 ? 1 : 0;
    return s;
}

} // namespace m2ndp
