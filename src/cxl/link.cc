#include "cxl/link.hh"

#include <algorithm>

namespace m2ndp {

Tick
CxlDirection::send(std::uint32_t bytes)
{
    Tick ser = serializationTicks(bytes, cfg_.bandwidth_gbps);
    Tick start = std::max(eq_.now(), link_free_);
    Tick done = start + ser;
    link_free_ = done;
    stats_.messages += 1;
    stats_.bytes += bytes;
    stats_.queueing += start - eq_.now();
    return done + cfg_.oneway_latency;
}

} // namespace m2ndp
