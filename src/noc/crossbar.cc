#include "noc/crossbar.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace m2ndp {

Crossbar::Crossbar(EventQueue &eq, CrossbarConfig cfg)
    : eq_(eq), cfg_(cfg),
      port_free_(static_cast<std::size_t>(cfg.planes) * cfg.ports, 0)
{
    M2_ASSERT(cfg_.planes > 0 && cfg_.ports > 0, "empty crossbar");
}

Tick
Crossbar::send(unsigned dst_port, std::uint32_t bytes, Tick at,
               std::uint64_t route_hash)
{
    M2_ASSERT(dst_port < cfg_.ports, "bad crossbar port ", dst_port);
    M2_ASSERT(at + eq_.deliverySlack() >= eq_.now(),
              "crossbar injection in the past");
    unsigned plane = static_cast<unsigned>(mixHash64(route_hash) % cfg_.planes);
    Tick &free = port_free_[static_cast<std::size_t>(plane) * cfg_.ports +
                            dst_port];

    unsigned flits = (bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
    flits = std::max(flits, 1u);

    Tick ready = at + cfg_.hop_latency;
    Tick start = std::max(ready, free);
    Tick done = start + static_cast<Tick>(flits) * cfg_.cycle;
    free = done;

    stats_.flits += flits;
    stats_.bytes += bytes;
    stats_.total_queueing += start - ready;
    return done;
}

Tick
Crossbar::send(unsigned dst_port, std::uint32_t bytes,
               std::uint64_t route_hash)
{
    return send(dst_port, bytes, eq_.now(), route_hash);
}

} // namespace m2ndp
