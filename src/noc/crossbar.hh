/**
 * @file
 * On-chip crossbar interconnect.
 *
 * The CXL-M2NDP controller uses four parallel 32x32 crossbars with 32 B
 * flits (Table IV) connecting NDP units to memory-side L2 slices. We model
 * per-destination-port serialization on each crossbar plane plus a fixed
 * hop latency; planes are selected by address hash. On-chip bandwidth is
 * deliberately abundant relative to DRAM (Section III-E).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"

namespace m2ndp {

/** Crossbar configuration. */
struct CrossbarConfig
{
    unsigned planes = 4;       ///< parallel crossbar instances
    unsigned ports = 32;       ///< destination ports per plane
    unsigned flit_bytes = 32;  ///< serialization granularity
    Tick cycle = 500;          ///< flit slot duration (2 GHz)
    Tick hop_latency = 2000;   ///< traversal latency (4 cycles @ 2 GHz)
};

/** Traffic statistics. */
struct CrossbarStats
{
    std::uint64_t flits = 0;
    std::uint64_t bytes = 0;
    Tick total_queueing = 0; ///< accumulated arbitration delay
};

/**
 * Bandwidth-arbitrated crossbar. Callers ask for a delivery time; the
 * crossbar books flit slots on the (plane, dst) output port.
 */
class Crossbar
{
  public:
    Crossbar(EventQueue &eq, CrossbarConfig cfg);

    /**
     * Book transfer of @p bytes to @p dst_port, selecting a plane by
     * @p route_hash. @return the tick the last flit arrives.
     *
     * @p at is the logical injection tick (>= now): fused completion
     * paths book the hop from the producing stage's completion tick
     * instead of scheduling an event just to reach "now == at" first —
     * arbitration conflicts are still modeled through the per-port
     * next-free bookkeeping, with no event.
     */
    Tick send(unsigned dst_port, std::uint32_t bytes, Tick at,
              std::uint64_t route_hash);

    /** Convenience overload injecting at the current tick. */
    Tick send(unsigned dst_port, std::uint32_t bytes,
              std::uint64_t route_hash);

    const CrossbarStats &stats() const { return stats_; }
    const CrossbarConfig &config() const { return cfg_; }

  private:
    EventQueue &eq_;
    CrossbarConfig cfg_;
    std::vector<Tick> port_free_; ///< [plane * ports + dst]
    CrossbarStats stats_;
};

} // namespace m2ndp
