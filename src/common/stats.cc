#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace m2ndp {

namespace {
void
ensureSorted(std::vector<double> &samples, bool &sorted)
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}
} // namespace

double
Histogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
Histogram::min() const
{
    ensureSorted(samples_, sorted_);
    return samples_.empty() ? 0.0 : samples_.front();
}

double
Histogram::max() const
{
    ensureSorted(samples_, sorted_);
    return samples_.empty() ? 0.0 : samples_.back();
}

double
Histogram::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    M2_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    ensureSorted(samples_, sorted_);
    // Nearest-rank with linear interpolation between adjacent samples.
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
StatDump::get(const std::string &name) const
{
    auto it = stats_.find(name);
    M2_ASSERT(it != stats_.end(), "unknown stat: ", name);
    return it->second;
}

bool
StatDump::has(const std::string &name) const
{
    return stats_.find(name) != stats_.end();
}

std::string
StatDump::toString() const
{
    std::ostringstream oss;
    for (const auto &[name, value] : stats_)
        oss << name << " " << value << "\n";
    return oss.str();
}

} // namespace m2ndp
