/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All stochastic inputs (YCSB key skew, R-MAT edges, DLRM lookup indices,
 * arrival processes) draw from explicitly seeded generators so every
 * experiment is reproducible bit-for-bit.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace m2ndp {

/** SplitMix64: tiny, fast, well-distributed; used for seeding and hashing. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/** xoshiro256** 1.0 — the main workhorse generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedull)
    {
        SplitMix64 sm(seed);
        for (auto &s : s_)
            s = sm.next();
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        M2_ASSERT(bound != 0, "nextBounded(0)");
        // Lemire's multiply-shift rejection-free approximation is fine for
        // workload synthesis; bias is < 2^-64 * bound.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Exponentially distributed value with the given mean. */
    double
    nextExponential(double mean)
    {
        double u = nextDouble();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Zipfian key-popularity generator (YCSB's algorithm, theta = 0.99 default).
 * Produces ranks in [0, n); rank 0 is the most popular item.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99,
                     std::uint64_t seed = 0x217f5eedull)
        : n_(n), theta_(theta), rng_(seed)
    {
        M2_ASSERT(n > 0, "zipfian over empty domain");
        zetan_ = zeta(n_, theta_);
        zeta2_ = zeta(2, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
               (1.0 - zeta2_ / zetan_);
    }

    std::uint64_t
    next()
    {
        double u = rng_.nextDouble();
        double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        auto rank = static_cast<std::uint64_t>(
            static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= n_ ? n_ - 1 : rank;
    }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }

    std::uint64_t n_;
    double theta_;
    Rng rng_;
    double zetan_, zeta2_, alpha_, eta_;
};

} // namespace m2ndp
