/**
 * @file
 * Lightweight statistics: counters live as plain integers inside components
 * (hot path); this header provides the aggregation helpers used for
 * reporting — a sample histogram with exact percentiles (for tail-latency
 * studies) and a named stat dump used by benches.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hh"

namespace m2ndp {

/**
 * Exact-sample histogram. The tail-latency experiments (Figs. 1b, 10b, 11a)
 * need true p95 values over 10 K-1 M samples, so we keep every sample and
 * sort lazily.
 */
class Histogram
{
  public:
    void
    add(double sample)
    {
        samples_.push_back(sample);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }

    double mean() const;
    double min() const;
    double max() const;

    /** Exact percentile, p in [0, 100]. Empty histogram returns 0. */
    double percentile(double p) const;

    void
    clear()
    {
        samples_.clear();
        sorted_ = true;
    }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * A flat, ordered collection of named scalar statistics that components
 * export at end of simulation. Keys are dotted paths
 * (e.g. "device0.dram.reads").
 */
class StatDump
{
  public:
    void
    set(const std::string &name, double value)
    {
        stats_[name] = value;
    }

    void
    add(const std::string &name, double value)
    {
        stats_[name] += value;
    }

    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::map<std::string, double> &all() const { return stats_; }

    /** Render as "name value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, double> stats_;
};

} // namespace m2ndp
