/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#pragma once

#include <bit>
#include <cstdint>

#include "common/log.hh"

namespace m2ndp {

/** True if @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Align @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Align @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo == 63) ? ~0ull : ((1ull << (hi - lo + 1)) - 1));
}

/** Sign-extend the low @p width bits of @p v to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t v, unsigned width)
{
    unsigned shift = 64 - width;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

/**
 * Mix a 64-bit value into a well-distributed hash (SplitMix64 finalizer).
 * Used for hashed channel interleaving [Rau, ISCA'91 style] and the
 * DRAM-TLB entry location hash.
 */
constexpr std::uint64_t
mixHash64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace m2ndp
