/**
 * @file
 * Fundamental units for the simulator.
 *
 * Simulated time is kept as an integral number of picoseconds (Tick) so that
 * heterogeneous clock domains (2 GHz NDP units, 1.695 GHz SMs, DRAM command
 * clocks, ...) compose without rounding drift.
 */

#pragma once

#include <cstdint>

namespace m2ndp {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A physical (host-physical / device-physical) address. */
using Addr = std::uint64_t;

/** Maximum representable tick, used as "never". */
inline constexpr Tick kTickMax = ~Tick(0);

/// One nanosecond in ticks.
inline constexpr Tick kNs = 1000;
/// One microsecond in ticks.
inline constexpr Tick kUs = 1000 * kNs;
/// One millisecond in ticks.
inline constexpr Tick kMs = 1000 * kUs;
/// One second in ticks.
inline constexpr Tick kSec = 1000 * kMs;

constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kNs));
}

constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kUs));
}

/** Period in ticks of a clock of the given frequency in GHz. */
constexpr Tick
periodFromGHz(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz);
}

/** Period in ticks of a clock of the given frequency in MHz. */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1.0e6 / mhz);
}

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Convert ticks to seconds (for reporting only). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-12;
}

/** Bytes-per-second given bytes moved over a tick span. */
constexpr double
bytesPerSecond(std::uint64_t bytes, Tick span)
{
    return span == 0 ? 0.0
                     : static_cast<double>(bytes) / ticksToSeconds(span);
}

/**
 * Time to serialize @p bytes over a link of @p gbps GB/s (decimal GB),
 * rounded up to a whole tick.
 */
constexpr Tick
serializationTicks(std::uint64_t bytes, double gbps)
{
    // bytes / (gbps * 1e9 B/s) seconds -> picoseconds
    double ps = static_cast<double>(bytes) / gbps * 1000.0;
    Tick t = static_cast<Tick>(ps);
    return (static_cast<double>(t) < ps) ? t + 1 : t;
}

} // namespace m2ndp
