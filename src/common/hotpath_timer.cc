#include "common/hotpath_timer.hh"

namespace m2ndp::hotpath {

Counters g;

} // namespace m2ndp::hotpath
