/**
 * @file
 * Typed error taxonomy for the offload stack.
 *
 * Every layer that used to signal failure with a bare negative int64
 * (`kNdpErr`) now draws its codes from `NdpError`. The wire encoding is
 * unchanged — errors still travel as negative int64 values through the
 * M2func return slots and the `instance_id` field of launch records, so
 * kernel-instance ids (always positive) and error codes share one
 * channel exactly as before. What changed is that the value now says
 * *which* failure occurred, and `NdpEvent::error()` decodes it for the
 * application.
 *
 * Error classes, by origin:
 *  - launch-time rejections raised by `NdpController::launch`
 *    (InvalidKernel, QueueFull, BadPoolRegion),
 *  - registration failures (RegistrationFailed, IllegalInstruction),
 *  - kernel traps raised mid-execution by `NdpUnit`
 *    (UnmappedAddress, ScratchpadOverflow),
 *  - supervision (WatchdogTimeout from the controller watchdog),
 *  - transport (DeviceLost when a CXL link goes down),
 *  - stream policy (Aborted for queued launches cancelled by fail-fast,
 *    RetriesExhausted reserved for callers that track retry budgets),
 *  - admission control (Overloaded for bounded-queue rejection and
 *    DeadlineExceeded for expired-deadline shedding — docs/robustness.md
 *    "Overload protection").
 */

#pragma once

#include <cstdint>

#include "common/units.hh"

namespace m2ndp {

enum class NdpError : std::int64_t
{
    Ok = 0,
    /** Legacy catch-all; numerically equal to the old kNdpErr = -1. */
    Unknown = -1,
    /** Launch names a kernel this ASID never registered. */
    InvalidKernel = -2,
    /** Controller launch queue at capacity. */
    QueueFull = -3,
    /** Launch pool region has bound < base. */
    BadPoolRegion = -4,
    /** Kernel registration failed (resources, text readback). */
    RegistrationFailed = -5,
    /** Kernel text did not assemble / contains an unknown uop. */
    IllegalInstruction = -6,
    /** Kernel accessed a virtual address with no mapping. */
    UnmappedAddress = -7,
    /** Kernel accessed scratchpad beyond its declared allocation. */
    ScratchpadOverflow = -8,
    /** Instance exceeded the controller's watchdog cycle budget. */
    WatchdogTimeout = -9,
    /** The device's CXL link went down; the device is unreachable. */
    DeviceLost = -10,
    /** Queued launch cancelled by a fail-fast stream after an error. */
    Aborted = -11,
    /** Retry policy exhausted its relaunch budget. */
    RetriesExhausted = -12,
    /**
     * Admission control rejected the launch: a bounded stream or device
     * launch queue was at capacity (host-side backpressure, distinct
     * from the device controller's QueueFull). Retryable — the Retry
     * policy backs off through the tenant rate limiter before
     * re-submitting.
     */
    Overloaded = -13,
    /**
     * The launch carried a sim-time deadline that expired before it
     * reached the device; it was shed without occupying a launch slot.
     * Never retried (the deadline is absolute; a re-issue cannot meet
     * it).
     */
    DeadlineExceeded = -14,
};

/** Any negative int64 in an id/return channel is an error code. */
constexpr bool
isNdpError(std::int64_t v)
{
    return v < 0;
}

/** Decode an id/return-channel value into the typed enum. */
constexpr NdpError
ndpErrorOf(std::int64_t v)
{
    if (v >= 0)
        return NdpError::Ok;
    if (v < static_cast<std::int64_t>(NdpError::DeadlineExceeded))
        return NdpError::Unknown;
    return static_cast<NdpError>(v);
}

/** Stable human-readable name (for logs, stats dumps, tests). */
const char *ndpErrorName(NdpError e);

/**
 * Thrown by `NdpUnit` when a kernel instruction faults (unmapped
 * address, scratchpad overflow). Caught at the issue stage, where the
 * trapping uthread is retired and the owning instance is killed; it
 * never propagates past `NdpUnit::issueOne`.
 */
struct KernelTrap
{
    NdpError code;
    Addr va = 0;
};

} // namespace m2ndp
