#include "common/log.hh"

#include <cstdio>
#include <stdexcept>

namespace m2ndp {

namespace {
bool g_debug_enabled = [] {
    const char *env = std::getenv("M2NDP_DEBUG");
    return env != nullptr && env[0] != '0';
}();
} // namespace

bool
debugEnabled()
{
    return g_debug_enabled;
}

void
setDebugEnabled(bool on)
{
    g_debug_enabled = on;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets unit tests assert on panics;
    // uncaught it still terminates the process with a diagnostic.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail
} // namespace m2ndp
