/**
 * @file
 * Opt-in wall-clock attribution for the simulator's hot paths.
 *
 * `bench/micro_sim_throughput --breakdown` (and the always-on breakdown
 * pass of the default run) enables these counters for one instrumented
 * end-to-end run and reports the issue / fill / functional wall-clock
 * split, so the hot-path balance can be tracked across PRs without a
 * profiler (bench/run_bench.sh prints the one-line summary).
 *
 * Disabled (the default), a scope costs one predictable branch — cheap
 * enough to leave compiled into the hot paths. Timed scopes may nest
 * (the functional executor runs inside the issue stage); the reporter
 * subtracts inner from outer.
 *
 * The TSC / steady_clock reads below are host-side instrumentation that
 * never feeds simulated state: the counters are reported as wall-clock
 * ratios and are excluded from the gated bench medians, so same-seed
 * bit-exactness is unaffected. ndp-lint: allow-file(nondeterminism)
 */

#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace m2ndp::hotpath {

/**
 * All counters are in timebase "ticks" (TSC on x86-64, steady_clock
 * nanoseconds elsewhere). Consumers report *ratios* against a total
 * scope they open around the instrumented region, so no frequency
 * calibration is needed and the unit never leaks into reports.
 */
struct Counters
{
    bool enabled = false;
    std::uint64_t issue = 0;      ///< NdpUnit::issueOne (incl. functional)
    std::uint64_t fill = 0;       ///< Cache::handleLineFill
    std::uint64_t functional = 0; ///< isa::step inside the issue stage
    std::uint64_t total = 0;      ///< whole instrumented region

    void
    resetCounters()
    {
        issue = 0;
        fill = 0;
        functional = 0;
        total = 0;
    }
};

extern Counters g;

inline std::uint64_t
nowTicks()
{
#if defined(__x86_64__) || defined(_M_X64)
    // ~10 cycles vs ~25-70 ns for clock_gettime: cheap enough that the
    // instrumented pass stays representative of the uninstrumented one.
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

/** RAII scope accumulating into one counter when instrumentation is on. */
class Scope
{
  public:
    explicit Scope(std::uint64_t &sink)
        : sink_(g.enabled ? &sink : nullptr),
          t0_(sink_ != nullptr ? nowTicks() : 0)
    {
    }

    ~Scope()
    {
        if (sink_ != nullptr)
            *sink_ += nowTicks() - t0_;
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    std::uint64_t *sink_;
    std::uint64_t t0_;
};

} // namespace m2ndp::hotpath
