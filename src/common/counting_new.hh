/**
 * @file
 * Counting global operator new/delete replacements, shared by the
 * binaries that track heap allocations on the simulation hot path
 * (tests/test_alloc.cc, bench/micro_sim_throughput.cc).
 *
 * Include this header from exactly ONE translation unit per binary:
 * replaceable allocation functions may not be inline, so a second
 * inclusion in the same binary fails the link (which is the guard you
 * want). Every allocation form the toolchain emits is covered — plain,
 * array, and over-aligned — so metrics cannot silently miss
 * `alignas`-driven allocations (VecReg containers and the like).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace m2ndp {

/**
 * Total operator-new invocations in this binary (monotonic). Atomic so
 * executor threads of the partitioned engine can allocate concurrently;
 * relaxed increments — the count is a metric, not a synchronizer.
 */
inline std::atomic<std::uint64_t> &
allocationCount()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

} // namespace m2ndp

void *
operator new(std::size_t size)
{
    m2ndp::allocationCount().fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    m2ndp::allocationCount().fetch_add(1, std::memory_order_relaxed);
    std::size_t a = static_cast<std::size_t>(align);
    if (void *p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

// GCC's -Wmismatched-new-delete heuristic flags these frees when it
// inlines a replaced operator new at a call site and pairs it with a
// different delete form. All forms above allocate with malloc or
// aligned_alloc, both of which glibc's free() releases correctly, so
// the pairing is sound; suppress the false positive (the repo builds
// with -DWERROR=ON in CI).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
#pragma GCC diagnostic pop
