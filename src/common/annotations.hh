/**
 * @file
 * Source-level invariant annotations read by `tools/ndp_lint`.
 *
 * The simulator's three load-bearing invariants — allocation-free warm
 * paths, bit-exact determinism in seed and thread count, and mailbox-only
 * cross-partition communication — are enforced dynamically by the
 * counting-new test, the engine checksums, and the SimDomain lookahead
 * assertions. These macros make the *intent* visible in the source so the
 * static pass (docs/static_analysis.md) can reject violations at build
 * time, including on cold branches the runtime nets never execute.
 *
 * All macros compile to nothing (or a benign no-op): they exist purely as
 * tokens for the analyzer and as documentation for the reader.
 */

#pragma once

/**
 * Marks the *next function definition* as a hot path: the ndp-lint
 * `hotpath-alloc` rule rejects heap allocation (`new`, `malloc`/`calloc`/
 * `realloc`, `make_unique`/`make_shared`), `std::function`,
 * `std::shared_ptr`, and container-growth calls (`push_back`, `emplace*`,
 * `insert`, `resize`, `reserve`) anywhere in its body. Place it on the
 * line introducing the definition (before the return type or on the
 * preceding line). Legitimate exceptions — e.g. a capacity-retaining
 * `push_back` into a vector that provably reached steady-state capacity —
 * carry an audited `// ndp-lint: allow(hotpath-alloc)` suppression.
 */
#define M2NDP_HOT_PATH

/**
 * Marks everything from here to the end of the file as hot path (same
 * rule as M2NDP_HOT_PATH). Use in leaf headers whose entire purpose is a
 * warm-path primitive (e.g. the ready-list scheduler).
 */
#define M2NDP_HOT_PATH_FILE() static_assert(true, "ndp-lint hot-path file")

/**
 * Marks a state declaration (member, global) as owned by one simulation
 * partition (`"host"`, `"device"`, or a descriptive owner string). The
 * ndp-lint `partition-safety` rule enforces the transport discipline
 * around such state: cross-partition effects must travel through the
 * SimDomain mailbox API (`SimDomain::post`, `HostCxlPort::postToDeviceAt`
 * / `postToHostAt`); scheduling directly onto a *foreign* partition's
 * EventQueue (`deviceQueue().schedule*`, `hostQueue().schedule*`,
 * `device_queues_[i]->schedule*`) is rejected. Reading a foreign queue's
 * clock (`.now()`) for delivery-tick stamping remains legal.
 */
#define M2NDP_PARTITION_LOCAL(owner)

/**
 * Escape hatch documenting that a function intentionally runs on a cold /
 * setup path even though it lives in an otherwise-hot file region.
 * Terminates an M2NDP_HOT_PATH_FILE() region for the next function only.
 */
#define M2NDP_COLD_PATH
