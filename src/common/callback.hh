/**
 * @file
 * Small-buffer-optimized, move-only callable wrapper.
 *
 * The simulation hot loop creates one callback per event and per memory
 * packet. `std::function` heap-allocates for any capture larger than its
 * tiny internal buffer and requires copyability; InlineCallback instead
 * stores captures up to kInlineBytes (48 B) directly inline and accepts
 * move-only callables, so the vast majority of scheduling sites perform
 * zero allocations. Larger captures transparently fall back to the heap.
 */

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace m2ndp {

template <typename Signature>
class InlineCallback; // undefined primary: only R(Args...) is valid

template <typename R, typename... Args>
class InlineCallback<R(Args...)>
{
  public:
    /** Captures up to this many bytes are stored inline (no allocation). */
    static constexpr std::size_t kInlineBytes = 48;

    InlineCallback() noexcept = default;
    InlineCallback(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineCallback(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineCallback &
    operator=(F &&f)
    {
        reset();
        emplace(std::forward<F>(f));
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Destroy the held callable (no-op if empty). */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(&storage_);
            ops_ = nullptr;
        }
    }

    R
    operator()(Args... args)
    {
        return ops_->invoke(&storage_, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename F>
    static constexpr bool kFitsInline =
        sizeof(F) <= kInlineBytes &&
        alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    struct InlineModel
    {
        static R
        invoke(void *s, Args &&...args)
        {
            return (*std::launder(reinterpret_cast<F *>(s)))(
                std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            F *from = std::launder(reinterpret_cast<F *>(src));
            ::new (dst) F(std::move(*from));
            from->~F();
        }
        static void
        destroy(void *s) noexcept
        {
            std::launder(reinterpret_cast<F *>(s))->~F();
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename F>
    struct HeapModel
    {
        static F *&
        slot(void *s) noexcept
        {
            return *std::launder(reinterpret_cast<F **>(s));
        }
        static R
        invoke(void *s, Args &&...args)
        {
            return (*slot(s))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) (F *)(slot(src));
        }
        static void
        destroy(void *s) noexcept
        {
            delete slot(s);
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fd = std::decay_t<F>;
        if constexpr (kFitsInline<Fd>) {
            ::new (static_cast<void *>(&storage_)) Fd(std::forward<F>(f));
            ops_ = &InlineModel<Fd>::ops;
        } else {
            ::new (static_cast<void *>(&storage_))
                (Fd *)(new Fd(std::forward<F>(f)));
            ops_ = &HeapModel<Fd>::ops;
        }
    }

    void
    moveFrom(InlineCallback &other) noexcept
    {
        if (other.ops_ != nullptr) {
            other.ops_->relocate(&storage_, &other.storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace m2ndp
