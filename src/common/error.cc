#include "common/error.hh"

namespace m2ndp {

const char *
ndpErrorName(NdpError e)
{
    switch (e) {
    case NdpError::Ok:
        return "ok";
    case NdpError::Unknown:
        return "unknown";
    case NdpError::InvalidKernel:
        return "invalid-kernel";
    case NdpError::QueueFull:
        return "queue-full";
    case NdpError::BadPoolRegion:
        return "bad-pool-region";
    case NdpError::RegistrationFailed:
        return "registration-failed";
    case NdpError::IllegalInstruction:
        return "illegal-instruction";
    case NdpError::UnmappedAddress:
        return "unmapped-address";
    case NdpError::ScratchpadOverflow:
        return "scratchpad-overflow";
    case NdpError::WatchdogTimeout:
        return "watchdog-timeout";
    case NdpError::DeviceLost:
        return "device-lost";
    case NdpError::Aborted:
        return "aborted";
    case NdpError::RetriesExhausted:
        return "retries-exhausted";
    case NdpError::Overloaded:
        return "overloaded";
    case NdpError::DeadlineExceeded:
        return "deadline-exceeded";
    }
    return "invalid-error-code";
}

} // namespace m2ndp
