/**
 * @file
 * Intrusive slab-backed object pool.
 *
 * One template behind every hot-path record pool in the simulator
 * (MemPacket, LaunchRecord, HostAccess, M2func PayloadNode): objects are
 * carved out of slabs that live for the pool's lifetime and recycled
 * through an intrusive freelist, so steady-state acquire/release cycles
 * never touch the allocator. Single-threaded like the rest of the
 * simulator.
 *
 * T must be default-constructible and expose a pointer member usable as
 * the freelist link while the object is pooled (by default `T::next`;
 * pass e.g. `&MemPacket::link` to reuse a differently-named field). The
 * link member is owned by the pool only while the object is free — in
 * flight it is the caller's to use (wait-queue chains etc.), which is
 * exactly how the pre-template pools behaved.
 */

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace m2ndp {

template <typename T, auto NextMember = &T::next,
          std::size_t SlabObjects = 64>
class SlabPool
{
  public:
    SlabPool() = default;

    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    /**
     * Pop a recycled object (or carve a fresh slab). The link member is
     * cleared; all other fields hold whatever the previous user left —
     * callers reset what they care about, as the hand-rolled pools did.
     */
    T *
    acquire()
    {
        if (free_head_ == nullptr)
            grow();
        T *obj = free_head_;
        free_head_ = obj->*NextMember;
        obj->*NextMember = nullptr;
        ++live_;
        return obj;
    }

    /** Push @p obj back on the freelist. */
    void
    release(T *obj)
    {
        obj->*NextMember = free_head_;
        free_head_ = obj;
        --live_;
    }

    /** Objects currently acquired (for leak checks in tests). */
    std::size_t live() const { return live_; }

    /** Total objects ever carved (capacity watermarking). */
    std::size_t capacity() const { return slabs_.size() * SlabObjects; }

  private:
    void
    grow()
    {
        slabs_.push_back(std::make_unique<T[]>(SlabObjects));
        T *slab = slabs_.back().get();
        for (std::size_t i = 0; i < SlabObjects; ++i) {
            slab[i].*NextMember = free_head_;
            free_head_ = &slab[i];
        }
    }

    T *free_head_ = nullptr;
    std::size_t live_ = 0;
    std::vector<std::unique_ptr<T[]>> slabs_;
};

} // namespace m2ndp
