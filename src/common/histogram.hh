/**
 * @file
 * Deterministic fixed-bucket log2 latency histogram.
 *
 * The exact-sample `Histogram` in common/stats.hh stores every sample in
 * a vector and sorts lazily — fine for a few thousand bench samples, but
 * the open-loop traffic harness records one latency per request on the
 * hot completion path and must stay allocation-free. `LatencyHistogram`
 * is a fixed 2D bucket grid: an octave (floor(log2 v)) selects the row,
 * a linear sub-bucket within the octave selects the column, bounding the
 * relative quantization error at 1/kSubBuckets while `record()` is two
 * shifts, a mask and an increment on inline storage.
 *
 * Percentile extraction walks the cumulative counts and reports the
 * bucket's upper bound (clamped to the observed max), so percentiles are
 * deterministic, monotone in p, and never under-report a tail value —
 * the property the QoS gates in scripts/check_bench.py rely on.
 * Histograms merge by element-wise addition, which is how per-tenant
 * traffic results roll up into the aggregate distribution.
 */

#pragma once

#include <array>
#include <cstdint>

#include "common/bitutil.hh"

namespace m2ndp {

class LatencyHistogram
{
  public:
    /** Octaves: values up to 2^48 - 1 bucket exactly; larger ones clamp. */
    static constexpr unsigned kOctaves = 48;
    /** Linear sub-buckets per octave (max relative error 1/16). */
    static constexpr unsigned kSubBuckets = 16;
    static constexpr unsigned kBuckets = kOctaves * kSubBuckets;

    /** Record one sample. Allocation-free; safe on completion hot paths. */
    void
    record(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Element-wise accumulate @p other into this histogram. */
    void
    merge(const LatencyHistogram &other)
    {
        if (other.count_ == 0)
            return;
        for (unsigned b = 0; b < kBuckets; ++b)
            buckets_[b] += other.buckets_[b];
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
        count_ += other.count_;
        sum_ += other.sum_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ > 0
                   ? static_cast<double>(sum_) / static_cast<double>(count_)
                   : 0.0;
    }

    /**
     * Value at quantile @p p in [0, 1]: the upper bound of the first
     * bucket whose cumulative count reaches ceil(p * count), clamped to
     * the observed max. 0 when empty.
     */
    std::uint64_t
    percentile(double p) const
    {
        if (count_ == 0)
            return 0;
        if (p <= 0.0)
            return min_;
        // ceil(p * count) without float round-off at p = 1.
        auto target = static_cast<std::uint64_t>(
            p * static_cast<double>(count_));
        if (target < count_ &&
            static_cast<double>(target) <
                p * static_cast<double>(count_))
            ++target;
        if (target == 0)
            target = 1;
        std::uint64_t cum = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            cum += buckets_[b];
            if (cum >= target) {
                std::uint64_t hi = bucketUpperBound(b);
                return hi < max_ ? hi : max_;
            }
        }
        return max_;
    }

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p99() const { return percentile(0.99); }
    std::uint64_t p999() const { return percentile(0.999); }

    /** Raw bucket counts (for checksums and stat dumps). */
    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

    /** Bucket index a value lands in. */
    static constexpr unsigned
    bucketOf(std::uint64_t v)
    {
        // Values below kSubBuckets map 1:1 onto the first row's columns
        // (exact); from there each octave splits linearly kSubBuckets ways.
        if (v < kSubBuckets)
            return static_cast<unsigned>(v);
        unsigned oct = floorLog2(v);
        if (oct >= kOctaves)
            return kBuckets - 1;
        auto sub = static_cast<unsigned>(
            (v >> (oct - kSubBucketBits)) & (kSubBuckets - 1));
        return oct * kSubBuckets + sub;
    }

    /** Largest value mapping into bucket @p b (inclusive). */
    static constexpr std::uint64_t
    bucketUpperBound(unsigned b)
    {
        if (b < kSubBuckets)
            return b;
        unsigned oct = b / kSubBuckets;
        unsigned sub = b % kSubBuckets;
        std::uint64_t base = std::uint64_t{1} << oct;
        std::uint64_t step = base / kSubBuckets;
        return base + static_cast<std::uint64_t>(sub + 1) * step - 1;
    }

  private:
    static constexpr unsigned kSubBucketBits = 4;
    static_assert(1u << kSubBucketBits == kSubBuckets,
                  "sub-bucket count must be a power of two");

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace m2ndp
