/**
 * @file
 * Logging and error reporting for the m2ndp simulator.
 *
 * Follows the gem5 convention:
 *  - panic():  an internal invariant was violated (a simulator bug). Aborts.
 *  - fatal():  the simulation cannot continue due to a user error (bad
 *              configuration, invalid arguments). Exits with an error code.
 *  - warn():   something is not modeled as well as it could be, but the
 *              simulation can proceed.
 *  - inform(): status messages with no connotation of incorrect behaviour.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace m2ndp {

/** Severity levels for log messages. */
enum class LogLevel { Panic, Fatal, Warn, Inform, Debug };

namespace detail {

/** Emit one formatted log record to stderr and optionally terminate. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
buildMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Enable/disable debug tracing at runtime (M2NDP_DEBUG env var also works). */
bool debugEnabled();
void setDebugEnabled(bool on);

} // namespace m2ndp

/** An actual simulator bug: condition that should never happen. */
#define M2_PANIC(...)                                                          \
    ::m2ndp::detail::panicImpl(__FILE__, __LINE__,                             \
                               ::m2ndp::detail::buildMessage(__VA_ARGS__))

/** A user error: the simulation cannot continue. */
#define M2_FATAL(...)                                                          \
    ::m2ndp::detail::fatalImpl(__FILE__, __LINE__,                             \
                               ::m2ndp::detail::buildMessage(__VA_ARGS__))

#define M2_WARN(...)                                                           \
    ::m2ndp::detail::warnImpl(__FILE__, __LINE__,                              \
                              ::m2ndp::detail::buildMessage(__VA_ARGS__))

#define M2_INFORM(...)                                                         \
    ::m2ndp::detail::informImpl(::m2ndp::detail::buildMessage(__VA_ARGS__))

#define M2_DEBUG(...)                                                          \
    do {                                                                       \
        if (::m2ndp::debugEnabled())                                           \
            ::m2ndp::detail::debugImpl(                                        \
                ::m2ndp::detail::buildMessage(__VA_ARGS__));                   \
    } while (0)

/** panic() if the condition does not hold. */
#define M2_ASSERT(cond, ...)                                                   \
    do {                                                                       \
        if (!(cond))                                                           \
            M2_PANIC("assertion failed: " #cond " ",                           \
                     ::m2ndp::detail::buildMessage(__VA_ARGS__));              \
    } while (0)
