#include "device/cxl_memory_expander.hh"

#include "common/annotations.hh"

#include <algorithm>

#include "common/log.hh"

namespace m2ndp {

// Temporary path-latency breakdown instrumentation (debug builds of tools).
thread_local PathDebugCounters g_path_debug;

namespace {

/** Hop frame: DRAM-leg path-debug accounting (a = arrival tick). */
Tick
dramDebugHop(MemPacket &, Tick t, void *, std::uint64_t a, std::uint64_t)
{
    g_path_debug.dram += t - static_cast<Tick>(a);
    ++g_path_debug.ndram;
    return t;
}

} // namespace

/** MemPort adapter feeding the shared DRAM device from the L2 slices. */
class CxlMemoryExpander::DramPort : public MemPort
{
  public:
    explicit DramPort(CxlMemoryExpander &dev) : dev_(dev) {}

    void
    receive(MemPacketPtr pkt) override
    {
        receiveAt(std::move(pkt), dev_.eq_.now());
    }

    void
    receiveAt(MemPacketPtr pkt, Tick at) override
    {
        // Atomics that miss in L2 fetch their sector like reads.
        if (pkt->op == MemOp::Atomic)
            pkt->op = MemOp::Read;
        g_path_debug.l2 += at - pkt->issued_at;
        // Posted traffic (writebacks, drained write-through stores)
        // carries neither frames nor a callback; skipping the debug frame
        // keeps the DRAM recycle fast path (no parked completion) intact.
        if (pkt->onComplete || pkt->num_hops > 0)
            pkt->pushHop(&dramDebugHop, nullptr,
                         static_cast<std::uint64_t>(at), 0);
        dev_.dram_->receiveAt(std::move(pkt), at);
    }

  private:
    CxlMemoryExpander &dev_;
};

/** Routes L1D misses from unit @p unit over the NoC to the L2 slices and
 *  books the response crossbar on the way back. */
class CxlMemoryExpander::UnitPort : public MemPort
{
  public:
    UnitPort(CxlMemoryExpander &dev, unsigned unit) : dev_(dev), unit_(unit) {}

    void
    receive(MemPacketPtr pkt) override
    {
        receiveAt(std::move(pkt), dev_.eq_.now());
    }

    void
    receiveAt(MemPacketPtr pkt, Tick at) override
    {
        g_path_debug.l1 += at - pkt->issued_at;
        // Fused response delivery: the return crossbar hop rides as a
        // hop frame on the packet itself and is booked as a latency term
        // (per-port next-free bookkeeping models arbitration) when the
        // frame pops — the waiting NDP unit parks the early completion
        // on its cycle ticker. No response event, no unit-wake event,
        // and no carrier packet: the L1 miss continues downstream on
        // the same pooled node.
        pkt->pushHop(&UnitPort::respHop, &dev_,
                     std::uint64_t(unit_) |
                         (std::uint64_t(pkt->size) << 32),
                     static_cast<std::uint64_t>(at));
        dev_.localMemPacket(std::move(pkt), at);
    }

  private:
    /** Hop frame: response crossbar back to the unit (a = unit |
     *  bytes<<32, b = the request's crossbar arrival tick, for the
     *  path-debug split). */
    static Tick
    respHop(MemPacket &, Tick t, void *ctx, std::uint64_t a,
            std::uint64_t b)
    {
        auto *dev = static_cast<CxlMemoryExpander *>(ctx);
        const unsigned unit = static_cast<unsigned>(a & 0xffffffffu);
        const std::uint32_t bytes = static_cast<std::uint32_t>(a >> 32);
        g_path_debug.device += t - static_cast<Tick>(b);
        Tick resp = dev->resp_xbar_->send(unit, bytes, t, t ^ unit);
        g_path_debug.resp += resp - t;
        ++g_path_debug.n;
        return resp;
    }

    CxlMemoryExpander &dev_;
    unsigned unit_;
};

namespace {

/** Response-crossbar port used by CXL (host) responses. */
constexpr unsigned
hostRespPort(const DeviceConfig &cfg)
{
    return cfg.num_units;
}

constexpr unsigned
peerRespPort(const DeviceConfig &cfg)
{
    return cfg.num_units + 1;
}

} // namespace

CxlMemoryExpander::CxlMemoryExpander(EventQueue &eq, SparseMemory &global_mem,
                                     DeviceConfig cfg)
    : eq_(eq), cfg_(cfg), mem_(global_mem),
      unit_next_tick_(cfg.num_units, kTickMax),
      unit_ticker_(eq, [this] { unitCycleDriver(); }),
      next_m2func_base_(layout::deviceBase(cfg.index) + cfg.capacity -
                        layout::kM2FuncReserve),
      bi_rng_(0xB1B1 + cfg.index)
{
    // Drain delivery aligned to unit cycle edges: units park completions
    // until their next edge anyway, so the quantized drain coalesces
    // completer events with unit ticks at no unit-visible timing cost
    // (host-path completions through the L2 slices can deliver up to one
    // unit cycle later in *sim* time; their completion ticks stay exact).
    dram_ = std::make_unique<DramDevice>(eq_, cfg_.dram, cfg_.dram_channels,
                                         cfg_.interleave_bytes,
                                         cfg_.unit.period);
    dram_port_ = std::make_unique<DramPort>(*this);

    for (unsigned c = 0; c < cfg_.dram_channels; ++c) {
        CacheConfig l2;
        l2.name = "l2_slice" + std::to_string(c);
        l2.size = cfg_.l2_slice_bytes;
        l2.assoc = cfg_.l2_assoc;
        l2.line_bytes = 128;
        l2.sector_bytes = 32;
        l2.latency = cfg_.l2_latency_cycles * cfg_.unit.period;
        l2.port_cycle = cfg_.unit.period;
        l2.write_through = false;
        l2.write_allocate = true;
        l2.atomics_local = true; // global atomics execute here (III-F)
        l2.mshrs = 160;
        l2_slices_.push_back(std::make_unique<Cache>(eq_, l2, *dram_port_));
    }

    CrossbarConfig req = cfg_.noc;
    req.ports = cfg_.dram_channels;
    req_xbar_ = std::make_unique<Crossbar>(eq_, req);
    CrossbarConfig resp = cfg_.noc;
    resp.ports = cfg_.num_units + 2; // units + host + peer
    resp_xbar_ = std::make_unique<Crossbar>(eq_, resp);

    controller_ = std::make_unique<NdpController>(*this, cfg_.controller);

    for (unsigned u = 0; u < cfg_.num_units; ++u) {
        NdpUnitConfig uc = cfg_.unit;
        uc.index = u;
        units_.push_back(std::make_unique<NdpUnit>(*this, uc));
        unit_ports_.push_back(std::make_unique<UnitPort>(*this, u));
        CacheConfig l1;
        l1.name = "l1d_u" + std::to_string(u);
        l1.size = cfg_.l1d_bytes;
        l1.assoc = 16;
        l1.line_bytes = 128;
        l1.sector_bytes = 32;
        l1.latency = cfg_.l1d_latency_cycles * cfg_.unit.period;
        l1.port_cycle = cfg_.unit.period;
        l1.write_through = true;   // GPU-style, Section III-F
        l1.write_allocate = false;
        l1.atomics_local = false;  // global atomics go to the L2 slices
        l1.mshrs = 64;
        l1d_.push_back(std::make_unique<Cache>(eq_, l1, *unit_ports_[u]));
    }

    // DRAM-TLB region: 32 MiB below the M2func reserve (plenty for 2 MiB
    // pages; Section III-H notes 16 B / page overhead).
    Addr tlb_base = paBase() + cfg_.capacity - layout::kM2FuncReserve -
                    32 * kMiB;
    dram_tlb_ = std::make_unique<DramTlb>(tlb_base, 32 * kMiB, 2 * kMiB);

    media_link_free_.assign(std::max(1u, cfg_.media_links), 0);
}

CxlMemoryExpander::~CxlMemoryExpander() = default;

// --------------------------------------------------------------------------
// Memory path
// --------------------------------------------------------------------------

void
CxlMemoryExpander::localMemAccess(MemOp op, Addr pa, std::uint32_t size,
                                  MemSource source, Tick at,
                                  TickCallback done)
{
    localMemPacket(makePacket(op, pa, size, source, at, std::move(done)),
                   at);
}

M2NDP_HOT_PATH
void
CxlMemoryExpander::localMemPacket(MemPacketPtr pkt, Tick at)
{
    const Addr pa = pkt->addr;
    const std::uint32_t size = pkt->size;
    M2_ASSERT(ownsPa(pa), "local access outside device window");
    M2_ASSERT(at + eq_.deliverySlack() >= eq_.now(),
              "local access issued in the past");
    Addr local = pa - paBase();
    unsigned channel = dram_->channelOf(local);

    // Optional CXL hop to passive media (NDP-in-switch, Section III-J):
    // serialize request+response on the per-memory link.
    Tick media_delay = 0;
    if (cfg_.media_over_cxl) {
        unsigned link = channel % cfg_.media_links;
        Tick ser = serializationTicks(size + 16, cfg_.media_link_gbps) * 2;
        Tick start = std::max(at, media_link_free_[link]);
        media_link_free_[link] = start + ser;
        media_delay = (start - at) + ser + 2 * cfg_.media_link_latency;
    }

    // The crossbar plane hash keys on the *global* PA (stable across the
    // re-stamp below).
    Tick arrival = req_xbar_->send(channel, size, at, pa) + media_delay;

    // Fused delivery end to end: the slice's lookup, the DRAM booking and
    // the response hop all run synchronously with the arrival tick
    // threaded through as the timing floor — the request path schedules
    // no event at all. The slice books its lookup port in *issue* order
    // rather than strict arrival order (hash-selected crossbar planes can
    // reorder in flight); the per-port next-free clamp keeps the booking
    // conservative, and per-slice load is low enough (hashed channel
    // interleaving) that the approximation does not move contention.
    pkt->addr = local;
    l2_slices_[channel]->receiveAt(std::move(pkt), arrival);
}

void
CxlMemoryExpander::requestUnitTick(unsigned unit, Tick at)
{
    if (at < unit_next_tick_[unit])
        unit_next_tick_[unit] = at;
    // Inside the driver the request is observed by its own loop; arming
    // here would plant a queue event that blocks run-until-stall bursts.
    // A request for the edge being processed can land on a unit the loop
    // already passed (wakeAllUnits out of a later unit's uthread finish):
    // flag it so the driver revisits the edge.
    if (!in_cycle_driver_)
        unit_ticker_.armAt(at);
    else if (at <= driver_now_)
        driver_rescan_ = true;
}

void
CxlMemoryExpander::unitCycleDriver()
{
    in_cycle_driver_ = true;
    Tick now = eq_.now();
    const unsigned n = cfg_.num_units;
    for (;;) {
        // Run every unit due at this edge, in unit-index order (the
        // deterministic replacement for per-unit Ticker FIFO order),
        // folding the next-edge minimum into the same pass. A unit's
        // next edge arrives as tick()'s return value; requests landing
        // mid-loop on already-visited units raise driver_rescan_.
        driver_now_ = now;
        driver_rescan_ = false;
        Tick next = kTickMax;
        for (unsigned u = 0; u < n; ++u) {
            Tick t = unit_next_tick_[u];
            if (t <= now) {
                unit_next_tick_[u] = kTickMax;
                t = units_[u]->tick(now);
                if (unit_next_tick_[u] < t)
                    t = unit_next_tick_[u];
                unit_next_tick_[u] = t;
            }
            next = std::min(next, t);
        }
        if (driver_rescan_ || next <= now)
            continue; // same-edge re-tick (phase wake, queued completion)
        if (next == kTickMax)
            break; // all units stalled; a completion or wake re-arms
        // Run-until-stall: consume the next edge in place while nothing
        // else is scheduled before it — the common case during issue
        // bursts, where the old design paid one event per unit per cycle.
        if (!eq_.tryAdvance(next)) {
            unit_ticker_.armAt(next);
            break;
        }
        now = next;
    }
    in_cycle_driver_ = false;
}

M2NDP_HOT_PATH
void
CxlMemoryExpander::unitMemAccess(unsigned unit, MemOp op, Addr pa,
                                 std::uint32_t size, TickCallback done)
{
    // Cross-device P2P access (Section III-I).
    if (!ownsPa(pa)) {
        ++dstats_.p2p_accesses;
        M2_ASSERT(peer_access_, "P2P access with no peer route installed");
        peer_access_(cfg_.index, op, pa, size, std::move(done));
        return;
    }

    // Dirty-host-cache limit study (Fig. 13b): a fraction of NDP reads
    // require back-invalidating the host's cache over CXL first.
    Tick bi_delay = 0;
    if (op == MemOp::Read && cfg_.dirty_cache_ratio > 0.0 &&
        bi_rng_.nextDouble() < cfg_.dirty_cache_ratio) {
        ++dstats_.back_invalidations;
        bi_delay = cfg_.back_invalidation_latency;
    }

    // Through the unit's L1D; misses route over the NoC to the L2 slices
    // (the UnitPort adapter books the response crossbar).
    auto launch = [this, unit, op, pa, size,
                   done = std::move(done)]() mutable {
        l1d_[unit]->receive(makePacket(op, pa, size, MemSource::NdpUnit,
                                       eq_.now(), std::move(done)));
    };
    if (bi_delay > 0)
        eq_.scheduleAfter(bi_delay, std::move(launch));
    else
        launch();
}

Tick
CxlMemoryExpander::respXbarHop(MemPacket &, Tick t, void *ctx,
                               std::uint64_t a, std::uint64_t)
{
    // Fused: the crossbar hop is a latency term on the completion tick;
    // the consumer (host port / peer route) re-schedules at max(now, t),
    // so early delivery with a future stamp is safe.
    auto *dev = static_cast<CxlMemoryExpander *>(ctx);
    const unsigned port = static_cast<unsigned>(a & 0xffffffffu);
    const std::uint32_t bytes = static_cast<std::uint32_t>(a >> 32);
    return dev->resp_xbar_->send(port, bytes, t, t);
}

void
CxlMemoryExpander::respondVia(unsigned resp_port, std::uint32_t xbar_size,
                              MemOp op, Addr pa, std::uint32_t size,
                              MemSource source, TickCallback done)
{
    MemPacketPtr pkt =
        makePacket(op, pa, size, source, eq_.now(), std::move(done));
    pkt->pushHop(&CxlMemoryExpander::respXbarHop, this,
                 std::uint64_t(resp_port) | (std::uint64_t(xbar_size) << 32),
                 0);
    localMemPacket(std::move(pkt), eq_.now());
}

void
CxlMemoryExpander::peerMemAccess(MemOp op, Addr pa, std::uint32_t size,
                                 TickCallback done)
{
    respondVia(peerRespPort(cfg_), size, op, pa, size, MemSource::Peer,
               std::move(done));
}

// --------------------------------------------------------------------------
// CXL.mem ingress (post-link)
// --------------------------------------------------------------------------

void
CxlMemoryExpander::cxlWrite(Addr hpa, const void *data, std::uint32_t size,
                            TickCallback done)
{
    auto match = filter_.match(hpa);
    if (match) {
        ++dstats_.m2func_calls;
        // Store the payload functionally in the M2func region and stage a
        // copy in a pooled buffer for the controller. The staging copy is
        // required for correctness, not just allocation-freedom: launch
        // slots are strided 32 B apart (Section III-B), so a 64 B payload
        // in the region overlaps the next slot and a concurrent launch
        // there would clobber this one's argument bytes before the
        // controller handles them. The event captures only the node
        // pointer (fits the inline buffer).
        mem_.write(hpa, data, size);
        if (size > M2FuncPayload::kMaxBytes) {
            // The controller only ever sees the staged (clamped) copy, so
            // the oversize diagnostic must fire here.
            M2_WARN("M2func payload exceeds 64 B; truncating semantics");
        }
        Asid asid = match->asid;
        std::uint64_t offset = match->offset;
        PayloadNode *node = payload_pool_.acquire();
        node->payload.size = static_cast<std::uint8_t>(
            std::min<std::uint32_t>(size, M2FuncPayload::kMaxBytes));
        std::memcpy(node->payload.bytes.data(), data, node->payload.size);
        if (offset / kM2FuncStride >= kM2FuncLaunchSlotBase &&
            (node->payload.bytes[0] & kLaunchFlagCompact) &&
            node->payload.size > kCompactLaunchBytes)
            ++dstats_.m2func_batched_stores;
        eq_.scheduleAfter(cfg_.m2func_latency,
                          [this, asid, offset, node] {
                              controller_->handleWrite(asid, offset,
                                                       node->payload);
                              payload_pool_.release(node);
                          });
        // The write itself is acked immediately (Fig. 5a).
        done(eq_.now() + cfg_.m2func_latency);
        return;
    }
    ++dstats_.host_writes;
    mem_.write(hpa, data, size);
    respondVia(hostRespPort(cfg_), 16, MemOp::Write, hpa, size,
               MemSource::Host, std::move(done));
}

void
CxlMemoryExpander::cxlRead(Addr hpa, std::uint32_t size,
                           TickCallback done)
{
    auto match = filter_.match(hpa);
    if (match) {
        ++dstats_.m2func_calls;
        Asid asid = match->asid;
        // Carrier packet trick: the deferred return-value responder must
        // hold the completion callback without overflowing inline capture
        // buffers; a pooled packet is its zero-allocation home.
        MemPacket *carrier = makePacket(MemOp::Read, hpa, size,
                                        MemSource::Host, eq_.now(),
                                        std::move(done))
                                 .release();
        eq_.scheduleAfter(
            cfg_.m2func_latency,
            [this, asid, offset = match->offset, hpa, carrier] {
                controller_->handleRead(
                    asid, offset,
                    [this, hpa, carrier](std::int64_t value) {
                        mem_.write<std::int64_t>(hpa, value);
                        MemPacketPtr p(carrier);
                        p->complete(eq_.now());
                    });
            });
        return;
    }
    ++dstats_.host_reads;
    respondVia(hostRespPort(cfg_), size, MemOp::Read, hpa, size,
               MemSource::Host, std::move(done));
}

// --------------------------------------------------------------------------
// Driver-level management (CXL.io path)
// --------------------------------------------------------------------------

Addr
CxlMemoryExpander::allocateM2FuncRegion(Asid asid)
{
    // Idempotent per process: a second runtime for the same ASID shares
    // the region (the driver hands out one region per process).
    auto existing = m2func_regions_.find(asid);
    if (existing != m2func_regions_.end())
        return existing->second;
    Addr base = next_m2func_base_;
    M2_ASSERT(base + layout::kM2FuncRegionSize <=
                  paBase() + cfg_.capacity,
              "M2func reserve exhausted");
    if (!filter_.insert(base, base + layout::kM2FuncRegionSize, asid))
        M2_FATAL("packet filter rejected M2func region for asid ", asid);
    next_m2func_base_ += layout::kM2FuncRegionSize;
    m2func_regions_[asid] = base;
    return base;
}

void
CxlMemoryExpander::removeM2FuncRegion(Asid asid)
{
    filter_.remove(asid);
    m2func_regions_.erase(asid);
}

void
CxlMemoryExpander::attachProcess(const PageTable *table)
{
    processes_[table->asid()] = table;
}

// --------------------------------------------------------------------------
// NdpUnitEnv / NdpControllerEnv plumbing
// --------------------------------------------------------------------------

std::optional<Addr>
CxlMemoryExpander::translateFunctional(Asid asid, Addr va)
{
    auto it = processes_.find(asid);
    if (it == processes_.end())
        return std::nullopt;
    return it->second->translate(va);
}

void
CxlMemoryExpander::funcRead(Addr pa, void *out, unsigned size)
{
    mem_.read(pa, out, size);
}

void
CxlMemoryExpander::funcWrite(Addr pa, const void *in, unsigned size)
{
    mem_.write(pa, in, size);
}

void
CxlMemoryExpander::funcRead(Addr pa, void *out, unsigned size,
                            SparseMemory::FrameHint &hint)
{
    mem_.read(pa, out, size, hint);
}

void
CxlMemoryExpander::funcWrite(Addr pa, const void *in, unsigned size,
                             SparseMemory::FrameHint &hint)
{
    mem_.write(pa, in, size, hint);
}

std::uint64_t
CxlMemoryExpander::funcAmo(AmoOp op, Addr pa, std::uint64_t operand,
                           unsigned width)
{
    return amoExecute(mem_, op, pa, operand, width);
}

M2NDP_HOT_PATH
Addr
CxlMemoryExpander::dramTlbEntryPa(Asid asid, Addr va)
{
    return dram_tlb_->entryAddress(asid, va);
}

M2NDP_HOT_PATH
bool
CxlMemoryExpander::dramTlbWarm(Asid asid, Addr va)
{
    if (!cfg_.dram_tlb_warm)
        return false;
    return dram_tlb_->contains(asid, va);
}

void
CxlMemoryExpander::dramTlbRefill(Asid asid, Addr va)
{
    dram_tlb_->refill(asid, va);
}

std::uint64_t
CxlMemoryExpander::translationPageSize()
{
    return 2 * kMiB;
}

std::optional<SpawnItem>
CxlMemoryExpander::pullWork(unsigned unit)
{
    return controller_->pullWork(unit);
}

void
CxlMemoryExpander::requeueWork(unsigned unit, const SpawnItem &item)
{
    controller_->requeueWork(unit, item);
}

void
CxlMemoryExpander::uthreadFinished(KernelInstance *inst)
{
    controller_->uthreadFinished(inst);
}

void
CxlMemoryExpander::storeIssued(KernelInstance *inst)
{
    controller_->storeIssued(inst);
}

void
CxlMemoryExpander::storeDrained(KernelInstance *inst, Tick when)
{
    controller_->storeDrained(inst, when);
}

void
CxlMemoryExpander::instanceFaulted(KernelInstance *inst, std::int64_t code)
{
    controller_->killInstance(inst, code);
}

void
CxlMemoryExpander::wakeAllUnits()
{
    for (auto &u : units_)
        u->wake();
}

bool
CxlMemoryExpander::readKernelText(Asid asid, Addr va, std::uint32_t size,
                                  std::string &out)
{
    out.clear();
    out.reserve(size);
    // Translate page-by-page; kernel text may span mappings.
    std::uint32_t remaining = size;
    Addr cursor = va;
    while (remaining > 0) {
        auto pa = translateFunctional(asid, cursor);
        if (!pa)
            return false;
        std::uint64_t page = translationPageSize();
        std::uint64_t chunk =
            std::min<std::uint64_t>(remaining, page - (cursor % page));
        std::string buf(chunk, '\0');
        mem_.read(*pa, buf.data(), chunk);
        out += buf;
        cursor += chunk;
        remaining -= static_cast<std::uint32_t>(chunk);
    }
    return true;
}

void
CxlMemoryExpander::flushInstructionCaches()
{
    // Kernel code is tiny and I-cache timing is not modeled (Section III-F
    // notes the impact is negligible); the flush is a functional no-op.
}

void
CxlMemoryExpander::shootdownTlb(Asid asid, Addr va)
{
    for (auto &u : units_)
        u->shootdownTlb(asid, va);
    dram_tlb_->shootdown(asid, va);
}

NdpUnitStats
CxlMemoryExpander::aggregateUnitStats() const
{
    NdpUnitStats total;
    for (const auto &u : units_) {
        // Snapshot, not stats(): folds each unit's still-open burst in,
        // so a run whose longest burst is its last is reported fully.
        const NdpUnitStats s = u->statsSnapshot();
        total.instructions += s.instructions;
        total.scalar_instructions += s.scalar_instructions;
        total.vector_instructions += s.vector_instructions;
        total.uthreads_completed += s.uthreads_completed;
        total.global_loads += s.global_loads;
        total.global_stores += s.global_stores;
        total.global_atomics += s.global_atomics;
        total.spad_accesses += s.spad_accesses;
        total.spad_bytes += s.spad_bytes;
        total.global_bytes += s.global_bytes;
        total.issue_cycles += s.issue_cycles;
        total.active_cycles += s.active_cycles;
        total.occupancy_integral += s.occupancy_integral;
        total.load_latency_ticks += s.load_latency_ticks;
        total.load_samples += s.load_samples;
        total.ready_occupancy_integral += s.ready_occupancy_integral;
        total.stall_mem_wait += s.stall_mem_wait;
        total.stall_no_ready += s.stall_no_ready;
        total.stall_fu_busy += s.stall_fu_busy;
        total.bursts += s.bursts;
        total.burst_cycles += s.burst_cycles;
        total.burst_max = std::max(total.burst_max, s.burst_max);
        total.traps_unmapped += s.traps_unmapped;
        total.traps_spad_oob += s.traps_spad_oob;
        total.uthreads_killed += s.uthreads_killed;
        for (unsigned b = 0; b < NdpUnitStats::kBurstBuckets; ++b)
            total.burst_hist[b] += s.burst_hist[b];
    }
    return total;
}

unsigned
CxlMemoryExpander::activeContexts() const
{
    unsigned total = 0;
    for (const auto &u : units_)
        total += u->activeSlots();
    return total;
}

} // namespace m2ndp
