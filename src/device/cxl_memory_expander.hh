/**
 * @file
 * The CXL memory expander with M2NDP (Fig. 3).
 *
 * Assembles: packet filter -> {NDP controller | memory path}, 32 NDP units,
 * request/response crossbars, per-channel memory-side L2 slices, the
 * LPDDR5 DRAM device, and the DRAM-TLB region. A passive expander is the
 * same device with zero NDP units.
 *
 * Functional memory contents live in a system-wide SparseMemory (shared so
 * that P2P accesses across devices need no copying); this class owns all
 * *timing* for accesses that land in its physical window.
 *
 * Also supports the M2NDP-in-CXL-switch configuration (Section III-J):
 * with `media_over_cxl` set, the "DRAM" sits behind per-memory CXL links,
 * modeling an NDP-enabled switch in front of passive expanders (Fig. 9).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "common/slab_pool.hh"
#include "cxl/link.hh"
#include "cxl/packet_filter.hh"
#include "dram/dram.hh"
#include "mem/page_table.hh"
#include "mem/sparse_memory.hh"
#include "ndp/ndp_controller.hh"
#include "ndp/ndp_unit.hh"
#include "noc/crossbar.hh"
#include "sim/event_queue.hh"

namespace m2ndp {

/** Device configuration (Table IV defaults). */
struct DeviceConfig
{
    unsigned index = 0;
    std::uint64_t capacity = 256ull * kGiB;

    // DRAM media.
    DramTiming dram = DramTiming::lpddr5();
    unsigned dram_channels = 32;
    std::uint64_t interleave_bytes = 256;

    // Memory-side L2: 128 KiB per channel slice, 16-way, 7-cycle.
    std::uint64_t l2_slice_bytes = 128 * kKiB;
    unsigned l2_assoc = 16;
    Tick l2_latency_cycles = 7;

    // NDP units.
    unsigned num_units = 32;
    NdpUnitConfig unit;

    // NDP-unit L1D: 128 KiB total split with the scratchpad (Section III-F).
    std::uint64_t l1d_bytes = 64 * kKiB;
    Tick l1d_latency_cycles = 4;

    // On-chip NoC (four 32x32 crossbars of 32 B flits).
    CrossbarConfig noc;

    // M2func handling latency at the controller (microcontroller-style).
    Tick m2func_latency = 30 * kNs;

    // NDP controller limits and watchdog budget.
    NdpControllerConfig controller;

    // Dirty-host-cache limit study (Fig. 13b): fraction of NDP-read data
    // requiring back-invalidation from the host cache.
    double dirty_cache_ratio = 0.0;
    Tick back_invalidation_latency = 150 * kNs;

    // Section III-J: media behind CXL links (NDP-enabled switch).
    bool media_over_cxl = false;
    unsigned media_links = 1;
    double media_link_gbps = 64.0;
    Tick media_link_latency = 35 * kNs;

    // DRAM-TLB steady-state warmth (Section III-H).
    bool dram_tlb_warm = true;
};

/**
 * Temporary path-latency breakdown (for debugging tools). Thread-local:
 * each device partition's executor accumulates into its own copy, so the
 * hot-path increments stay race-free under partitioned simulation.
 */
struct PathDebugCounters
{
    std::uint64_t n = 0;
    std::uint64_t l1 = 0;
    std::uint64_t device = 0;
    std::uint64_t resp = 0;
    std::uint64_t l2 = 0;
    std::uint64_t dram = 0;
    std::uint64_t ndram = 0;
};
extern thread_local PathDebugCounters g_path_debug;

/** Device statistics snapshot. */
struct DeviceStats
{
    std::uint64_t host_reads = 0;
    std::uint64_t host_writes = 0;
    std::uint64_t m2func_calls = 0;
    /** M2func stores carrying two compact launches (one store, two
     *  kernels — the batched-launch lever under offered-load pressure). */
    std::uint64_t m2func_batched_stores = 0;
    std::uint64_t back_invalidations = 0;
    std::uint64_t p2p_accesses = 0;
};

/** The device. */
class CxlMemoryExpander : public NdpUnitEnv, public NdpControllerEnv
{
  public:
    CxlMemoryExpander(EventQueue &eq, SparseMemory &global_mem,
                      DeviceConfig cfg);
    ~CxlMemoryExpander() override;

    // ---- host-facing CXL.mem entry points (post-link delivery) ----

    /**
     * A CXL.mem write (M2S RwD) arrived. Passes through the packet filter;
     * M2func hits go to the NDP controller, everything else is a memory
     * write. @p done fires when the NDR response may be sent. The payload
     * is consumed (written to functional memory) before this returns, so
     * the caller's buffer need not outlive the call.
     */
    void cxlWrite(Addr hpa, const void *data, std::uint32_t size,
                  TickCallback done);

    /** A CXL.mem read (M2S Req) arrived. @p done carries the data tick. */
    void cxlRead(Addr hpa, std::uint32_t size, TickCallback done);

    // ---- driver-level (CXL.io) management ----

    /** Allocate and install an M2func region for a process. @return its
     *  host-physical base address. */
    Addr allocateM2FuncRegion(Asid asid);
    void removeM2FuncRegion(Asid asid);

    /** Register a process' page table for functional translation. */
    void attachProcess(const PageTable *table);

    // ---- structural access ----
    NdpController &controller() { return *controller_; }
    const NdpController &controller() const { return *controller_; }
    NdpUnit &unit(unsigned i) { return *units_[i]; }
    const DramDevice &dram() const { return *dram_; }
    const Cache &l2Slice(unsigned i) const { return *l2_slices_[i]; }
    const Cache &l1dCache(unsigned u) const { return *l1d_[u]; }
    unsigned numL2Slices() const
    {
        return static_cast<unsigned>(l2_slices_.size());
    }
    const PacketFilter &packetFilter() const { return filter_; }
    const DeviceConfig &config() const { return cfg_; }
    const DeviceStats &deviceStats() const { return dstats_; }
    const Crossbar &requestNoc() const { return *req_xbar_; }

    Addr paBase() const { return layout::deviceBase(cfg_.index); }
    bool
    ownsPa(Addr pa) const
    {
        return pa >= paBase() && pa < paBase() + layout::kDeviceWindow;
    }

    /** Aggregate NDP-unit stats across the device. */
    NdpUnitStats aggregateUnitStats() const;

    /** Total live uthread slots right now (Fig. 6a sampling). */
    unsigned activeContexts() const;

    /** M2func payload staging nodes currently checked out (leak tests). */
    std::size_t livePayloadNodes() const { return payload_pool_.live(); }

    /**
     * Install the cross-device P2P access hook (set by the System).
     * Inline (48 B SBO, move-only): the System's route captures only its
     * `this` pointer, and the hook sits on the warm P2P access path where
     * a `std::function` would heap-allocate per installation and defeat
     * the hot-path purity rule.
     */
    using PeerAccessFn = InlineCallback<void(unsigned src_device, MemOp op,
                                             Addr pa, std::uint32_t size,
                                             TickCallback)>;
    void setPeerAccess(PeerAccessFn fn) { peer_access_ = std::move(fn); }

    /** Timing access into this device's memory from a peer device or the
     *  switch (bypasses the packet filter). */
    void peerMemAccess(MemOp op, Addr pa, std::uint32_t size,
                       TickCallback done);

    // ---- NdpUnitEnv ----
    EventQueue &eventQueue() override { return eq_; }
    void requestUnitTick(unsigned unit, Tick at) override;
    void unitMemAccess(unsigned unit, MemOp op, Addr pa, std::uint32_t size,
                       TickCallback done) override;
    std::optional<Addr> translateFunctional(Asid asid, Addr va) override;
    void funcRead(Addr pa, void *out, unsigned size) override;
    void funcWrite(Addr pa, const void *in, unsigned size) override;
    void funcRead(Addr pa, void *out, unsigned size,
                  SparseMemory::FrameHint &hint) override;
    void funcWrite(Addr pa, const void *in, unsigned size,
                   SparseMemory::FrameHint &hint) override;
    std::uint64_t funcAmo(AmoOp op, Addr pa, std::uint64_t operand,
                          unsigned width) override;
    Addr dramTlbEntryPa(Asid asid, Addr va) override;
    bool dramTlbWarm(Asid asid, Addr va) override;
    void dramTlbRefill(Asid asid, Addr va) override;
    std::uint64_t translationPageSize() override;
    std::optional<SpawnItem> pullWork(unsigned unit) override;
    void requeueWork(unsigned unit, const SpawnItem &item) override;
    void uthreadFinished(KernelInstance *inst) override;
    void storeIssued(KernelInstance *inst) override;
    void storeDrained(KernelInstance *inst, Tick when) override;
    void instanceFaulted(KernelInstance *inst, std::int64_t code) override;

    // ---- NdpControllerEnv ----
    unsigned numUnits() override { return cfg_.num_units; }
    unsigned slotsPerUnit() override
    {
        return cfg_.unit.subcores * cfg_.unit.slots_per_subcore;
    }
    std::uint64_t unitScratchpadBytes() override
    {
        return cfg_.unit.spad_bytes;
    }
    void wakeAllUnits() override;
    bool readKernelText(Asid asid, Addr va, std::uint32_t size,
                        std::string &out) override;
    void flushInstructionCaches() override;
    void shootdownTlb(Asid asid, Addr va) override;

  private:
    /**
     * Timing access into this device's own memory path, logically issued
     * at @p at (>= now; fused upstream stages issue from their completion
     * tick). @p done follows the fused delivery convention: it may run
     * before sim-time reaches its tick argument.
     */
    void localMemAccess(MemOp op, Addr pa, std::uint32_t size,
                        MemSource source, Tick at, TickCallback done);

    /**
     * Single-packet form of localMemAccess: route @p pkt (addressed with
     * a global PA inside this device's window) over the request crossbar
     * to its L2 slice, re-stamping the address device-local in place. The
     * packet keeps whatever hop frames and completion callback it already
     * carries — an L1 miss rides through here unchanged.
     */
    void localMemPacket(MemPacketPtr pkt, Tick at);

    /**
     * Issue a local access that answers through response-crossbar port
     * @p resp_port with @p xbar_size response bytes (host and peer
     * traffic). The crossbar hop rides as a hop frame on the access
     * packet itself — the carrier packet the old callback-wrap needed is
     * gone; the response path allocates nothing.
     */
    void respondVia(unsigned resp_port, std::uint32_t xbar_size, MemOp op,
                    Addr pa, std::uint32_t size, MemSource source,
                    TickCallback done);

    /** Hop frame for host/peer responses: books the response crossbar as
     *  a latency term on the completion tick (a = port | bytes<<32). */
    static Tick respXbarHop(MemPacket &pkt, Tick t, void *ctx,
                            std::uint64_t a, std::uint64_t b);

    /**
     * Pooled staging buffer for an M2func payload in flight between the
     * CXL.mem ingress and the controller (see cxlWrite for why staging is
     * required and why events carry only the node pointer).
     */
    struct PayloadNode
    {
        PayloadNode *next = nullptr;
        M2FuncPayload payload;
    };

    EventQueue &eq_;
    DeviceConfig cfg_;
    SparseMemory &mem_;

    PacketFilter filter_;
    std::unique_ptr<DramDevice> dram_;
    std::vector<std::unique_ptr<Cache>> l2_slices_;
    std::unique_ptr<Crossbar> req_xbar_;
    std::unique_ptr<Crossbar> resp_xbar_;
    std::unique_ptr<NdpController> controller_;
    std::vector<std::unique_ptr<NdpUnit>> units_;
    std::unique_ptr<DramTlb> dram_tlb_;

    /** Adapters so each L2 slice can feed the shared DRAM device. */
    class DramPort;
    std::unique_ptr<DramPort> dram_port_;

    /** Per-unit L1D caches (write-through, Section III-F) and the adapters
     *  routing their misses over the request crossbar to the L2 slices. */
    class UnitPort;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<UnitPort>> unit_ports_;

    /**
     * Shared cycle driver (run-until-stall ticking): one Ticker serves
     * every NDP unit. `unit_next_tick_[u]` is the earliest edge unit u
     * wants service (kTickMax when stalled); the driver runs all due
     * units per edge in unit-index order, then either consumes the next
     * edge in place — when `EventQueue::tryAdvance` proves no other event
     * intervenes (burst: zero scheduled events per edge) — or re-arms the
     * Ticker at the earliest requested edge. Requests arriving while the
     * driver runs are picked up by its own loop instead of re-arming.
     */
    void unitCycleDriver();
    std::vector<Tick> unit_next_tick_;
    Ticker unit_ticker_;
    bool in_cycle_driver_ = false;
    /** Edge the driver is processing, and whether a request for that very
     *  edge landed on an already-visited unit mid-loop (phase wakes). */
    Tick driver_now_ = 0;
    bool driver_rescan_ = false;

    /** Media-over-CXL serialization state (Section III-J). */
    std::vector<Tick> media_link_free_;

    std::unordered_map<Asid, const PageTable *> processes_;
    std::unordered_map<Asid, Addr> m2func_regions_;
    Addr next_m2func_base_;

    Rng bi_rng_;
    PeerAccessFn peer_access_;
    DeviceStats dstats_;

    SlabPool<PayloadNode> payload_pool_;
};

} // namespace m2ndp
